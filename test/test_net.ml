(* Tests for the wire-protocol layer: codec round-trips, malformed
   frames, and a loopback client/server covering the serving semantics —
   per-session isolation, deadlines, backpressure, graceful shutdown. *)

module Protocol = Pb_net.Protocol
module Server = Pb_net.Server
module Client = Pb_net.Client

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---- codec ------------------------------------------------------------ *)

(* Feed raw bytes to the frame reader the way a socket would. *)
let read_frames_of_string s =
  let pos = ref 0 in
  let read_byte () =
    if !pos >= String.length s then None
    else begin
      let c = s.[!pos] in
      incr pos;
      Some c
    end
  in
  let read_exact n =
    if !pos + n > String.length s then None
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      Some r
    end
  in
  fun () -> Protocol.read_frame_gen ~read_byte ~read_exact

let frame_of_string s = read_frames_of_string s ()

let write_frame_to_string payload =
  let buf = Filename.temp_file "pb_net_frame" "" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove buf with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin buf in
      Protocol.write_frame oc payload;
      close_out oc;
      let ic = open_in_bin buf in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let wire = write_frame_to_string payload in
      match frame_of_string wire with
      | Protocol.Frame p ->
          Alcotest.(check string) "payload survives" payload p
      | Protocol.Eof | Protocol.Bad _ -> Alcotest.fail "expected a frame")
    [ ""; "x"; "OK\nhello"; "binary \000\001\255 bytes"; "multi\nline\npayload";
      String.make 100_000 'z' ]

let test_frame_streaming () =
  (* several frames back to back parse in order *)
  let wire =
    write_frame_to_string "first" ^ write_frame_to_string ""
    ^ write_frame_to_string "third"
  in
  let next = read_frames_of_string wire in
  (match next () with
  | Protocol.Frame p -> Alcotest.(check string) "first" "first" p
  | _ -> Alcotest.fail "frame 1");
  (match next () with
  | Protocol.Frame p -> Alcotest.(check string) "second" "" p
  | _ -> Alcotest.fail "frame 2");
  (match next () with
  | Protocol.Frame p -> Alcotest.(check string) "third" "third" p
  | _ -> Alcotest.fail "frame 3");
  match next () with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "expected EOF after last frame"

let expect_bad label wire =
  match frame_of_string wire with
  | Protocol.Bad _ -> ()
  | Protocol.Frame _ -> Alcotest.fail (label ^ ": accepted a bad frame")
  | Protocol.Eof -> Alcotest.fail (label ^ ": reported clean EOF")

let test_frame_malformed () =
  expect_bad "truncated payload" "10\nabc";
  expect_bad "truncated header" "12";
  expect_bad "empty header" "\npayload";
  expect_bad "junk header" "12x\npayload";
  expect_bad "negative-ish header" "-2\npayload";
  (* 9 digits always exceeds the 8-digit header bound *)
  expect_bad "huge header" "123456789\npayload";
  (* 8 digits but over max_frame *)
  expect_bad "oversized frame" "99999999\npayload";
  match frame_of_string "" with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "empty stream should be clean EOF"

let test_request_codec () =
  List.iter
    (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok r ->
          Alcotest.(check string) "text" req.Protocol.text r.Protocol.text;
          Alcotest.(check bool) "deadline" true
            (r.Protocol.deadline = req.Protocol.deadline)
      | Error e -> Alcotest.fail e)
    [
      { Protocol.text = "\\tables"; deadline = None };
      { Protocol.text = "SELECT 1"; deadline = Some 2.5 };
      { Protocol.text = "line one\nline two"; deadline = Some 0.125 };
      { Protocol.text = ""; deadline = None };
    ];
  (match Protocol.decode_request "REQ -1\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative deadline accepted");
  (match Protocol.decode_request "REQ nan\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nan deadline accepted");
  match Protocol.decode_request "NOPE\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad verb accepted"

let test_response_codec () =
  let cases : Protocol.response list =
    [
      Ok "plain output";
      Ok "";
      Ok "multi\nline\noutput";
      Error (Protocol.Busy, "server busy");
      Error (Protocol.Deadline_exceeded, "too slow");
      Error (Protocol.Bad_request, "what");
      Error (Protocol.Shutting_down, "bye");
      Error (Protocol.Internal, "boom");
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.decode_response (Protocol.encode_response resp) with
      | Ok r -> Alcotest.(check bool) "response round-trips" true (r = resp)
      | Error e -> Alcotest.fail e)
    cases;
  match Protocol.decode_response "ERR gremlins\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown error code accepted"

(* ---- loopback server -------------------------------------------------- *)

let make_db n =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes"
    (Pb_workload.Workload.recipes ~seed:11 ~n ());
  db

let test_config =
  { Server.default_config with port = 0; poll_interval = 0.02 }

let paql_line =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 2 AND SUM(P.calories) <= 2600 MAXIMIZE SUM(P.protein)"

(* A query whose cost is dominated by an unindexed 3-way cross product:
   slow at any pool size, used to trigger deadlines and exercise drain. *)
let slow_sql = "SELECT COUNT(*) FROM recipes a, recipes b, recipes c"

let ok_or_fail = function
  | Ok output -> output
  | Error (code, msg) ->
      Alcotest.fail
        (Printf.sprintf "unexpected protocol error %s: %s"
           (Protocol.error_code_to_string code)
           msg)

let test_loopback_basic () =
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          (* backslash command *)
          let tables = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "tables lists recipes" true
            (contains tables "recipes");
          (* SQL *)
          let count = ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes") in
          Alcotest.(check bool) "sql counts" true (contains count "40");
          (* PaQL *)
          let pkg = ok_or_fail (Client.request c paql_line) in
          Alcotest.(check bool) "package found" true
            (contains pkg "objective:");
          Alcotest.(check bool) "strategy reported" true
            (contains pkg "strategy:");
          (* errors come back in-band and leave the connection usable *)
          let bad = ok_or_fail (Client.request c "SELECT FROM") in
          Alcotest.(check bool) "sql error in-band" true (contains bad "error");
          let again = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "still usable" true (contains again "recipes")))

let test_loopback_session_isolation () =
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      let port = Server.port server in
      Client.with_connection ~port (fun a ->
          Client.with_connection ~port (fun b ->
              (* A runs a PaQL query; B's session has no last package. *)
              ignore (ok_or_fail (Client.request a paql_line));
              let b_save = ok_or_fail (Client.request b "\\save stolen") in
              Alcotest.(check bool) "B cannot save A's package" true
                (contains b_save "nothing to save");
              let a_save = ok_or_fail (Client.request a "\\save mine") in
              Alcotest.(check bool) "A saves its own" true
                (contains a_save "pkg_mine");
              (* the DATA is shared: B sees the saved package table *)
              let b_pkgs = ok_or_fail (Client.request b "\\packages") in
              Alcotest.(check bool) "saved package is shared data" true
                (contains b_pkgs "mine"))))

let test_loopback_concurrent_clients () =
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      let port = Server.port server in
      let failures = Atomic.make 0 in
      let worker i =
        Client.with_connection ~port (fun c ->
            for _ = 1 to 12 do
              (* interleave SQL and PaQL across clients *)
              let r =
                if i mod 2 = 0 then Client.request c "SELECT COUNT(*) FROM recipes"
                else Client.request c paql_line
              in
              match r with
              | Ok out ->
                  let want = if i mod 2 = 0 then "40" else "objective:" in
                  if not (contains out want) then Atomic.incr failures
              | Error _ -> Atomic.incr failures
            done)
      in
      let threads = List.init 4 (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Alcotest.(check int) "every concurrent request answered correctly" 0
        (Atomic.get failures))

let test_loopback_deadline () =
  Server.with_server ~config:test_config (make_db 100) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          (match Client.request ~deadline:0.02 c slow_sql with
          | Error (Protocol.Deadline_exceeded, msg) ->
              Alcotest.(check bool) "mentions the deadline" true
                (contains msg "deadline")
          | Ok _ -> Alcotest.fail "slow query beat a 20ms deadline"
          | Error (code, msg) ->
              Alcotest.fail
                (Printf.sprintf "wrong error %s: %s"
                   (Protocol.error_code_to_string code)
                   msg));
          (* the connection survives a deadline error *)
          let after = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "connection usable after deadline" true
            (contains after "recipes")))

let test_loopback_busy () =
  let config = { test_config with max_connections = 2 } in
  Server.with_server ~config (make_db 20) (fun server ->
      let port = Server.port server in
      Client.with_connection ~port (fun a ->
          Client.with_connection ~port (fun b ->
              (* both admitted connections work *)
              ignore (ok_or_fail (Client.request a "\\tables"));
              ignore (ok_or_fail (Client.request b "\\tables"));
              (* the (max+1)-th is rejected with busy *)
              let c = Client.connect ~port () in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  match Client.request c "\\tables" with
                  | Error (Protocol.Busy, msg) ->
                      Alcotest.(check bool) "says busy" true
                        (contains msg "busy")
                  | Ok _ -> Alcotest.fail "over-limit connection admitted"
                  | Error (code, _) ->
                      Alcotest.fail
                        ("wrong error: " ^ Protocol.error_code_to_string code))));
      (* both slots free again: a new client is admitted *)
      let rec retry n =
        Client.with_connection ~port (fun c ->
            match Client.request c "\\tables" with
            | Ok out -> out
            | Error (Protocol.Busy, _) when n > 0 ->
                Thread.delay 0.05;
                retry (n - 1)
            | Error (code, msg) ->
                Alcotest.fail
                  (Protocol.error_code_to_string code ^ ": " ^ msg))
      in
      Alcotest.(check bool) "slot freed after close" true
        (contains (retry 40) "recipes"))

let test_shutdown_drains () =
  let db = make_db 70 in
  let server = Server.start ~config:test_config db in
  let port = Server.port server in
  let result = ref (Ok "") in
  let client_thread =
    Thread.create
      (fun () ->
        Client.with_connection ~port (fun c ->
            result := Client.request c slow_sql))
      ()
  in
  (* let the slow request reach the server, then shut down mid-flight *)
  Thread.delay 0.2;
  Server.shutdown server;
  Thread.join client_thread;
  (match !result with
  | Ok out ->
      (* 70^3 product rows *)
      Alcotest.(check bool) "in-flight request completed during drain" true
        (contains out "343000")
  | Error (code, msg) ->
      Alcotest.fail
        (Printf.sprintf "drained request failed with %s: %s"
           (Protocol.error_code_to_string code)
           msg));
  (* the listener is gone: connecting now fails *)
  match Client.connect ~port () with
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
  | exception _ -> ()
  | c ->
      (* accept backlog raced the close; the server must at least not
         serve the connection *)
      Client.close c;
      Alcotest.fail "server still accepting after shutdown"

let test_shutdown_idempotent () =
  let server = Server.start ~config:test_config (make_db 10) in
  Server.shutdown server;
  Server.shutdown server;
  (* and with_server's finally also tolerates an early explicit stop *)
  Server.with_server ~config:test_config (make_db 10) (fun s ->
      Server.shutdown s)

let test_metrics_exposed () =
  Server.with_server ~config:test_config (make_db 20) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          ignore (ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes"));
          let dump = ok_or_fail (Client.request c "\\metrics") in
          Alcotest.(check bool) "request counter exposed" true
            (contains dump "pb_net_requests_total");
          Alcotest.(check bool) "active connection gauge exposed" true
            (contains dump "pb_net_active_connections");
          Alcotest.(check bool) "latency histogram exposed" true
            (contains dump "pb_net_sql_request_seconds")))

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame streaming" `Quick test_frame_streaming;
    Alcotest.test_case "malformed frames" `Quick test_frame_malformed;
    Alcotest.test_case "request codec" `Quick test_request_codec;
    Alcotest.test_case "response codec" `Quick test_response_codec;
    Alcotest.test_case "loopback PaQL/SQL/commands" `Quick test_loopback_basic;
    Alcotest.test_case "per-session isolation" `Quick
      test_loopback_session_isolation;
    Alcotest.test_case "concurrent clients" `Quick
      test_loopback_concurrent_clients;
    Alcotest.test_case "deadline exceeded, connection survives" `Quick
      test_loopback_deadline;
    Alcotest.test_case "max-connections busy rejection" `Quick
      test_loopback_busy;
    Alcotest.test_case "shutdown drains in-flight requests" `Quick
      test_shutdown_drains;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "net metrics exposed" `Quick test_metrics_exposed;
  ]
