(* Tests for the wire-protocol layer: codec round-trips, malformed
   frames, version negotiation, and a loopback client/server covering
   the serving semantics — per-session isolation, cooperative deadlines,
   admission backpressure, graceful shutdown. *)

module Protocol = Pb_net.Protocol
module Server = Pb_net.Server
module Client = Pb_net.Client

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---- codec ------------------------------------------------------------ *)

(* Feed raw bytes to the frame reader the way a socket would. *)
let read_frames_of_string s =
  let pos = ref 0 in
  let read_byte () =
    if !pos >= String.length s then None
    else begin
      let c = s.[!pos] in
      incr pos;
      Some c
    end
  in
  let read_exact n =
    if !pos + n > String.length s then None
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      Some r
    end
  in
  fun () -> Protocol.read_frame_gen ~read_byte ~read_exact

let frame_of_string s = read_frames_of_string s ()

let write_frame_to_string payload =
  let buf = Filename.temp_file "pb_net_frame" "" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove buf with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin buf in
      Protocol.write_frame oc payload;
      close_out oc;
      let ic = open_in_bin buf in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let wire = write_frame_to_string payload in
      match frame_of_string wire with
      | Protocol.Frame p ->
          Alcotest.(check string) "payload survives" payload p
      | Protocol.Eof | Protocol.Bad _ -> Alcotest.fail "expected a frame")
    [ ""; "x"; "OK\nhello"; "binary \000\001\255 bytes"; "multi\nline\npayload";
      String.make 100_000 'z' ]

let test_frame_streaming () =
  (* several frames back to back parse in order *)
  let wire =
    write_frame_to_string "first" ^ write_frame_to_string ""
    ^ write_frame_to_string "third"
  in
  let next = read_frames_of_string wire in
  (match next () with
  | Protocol.Frame p -> Alcotest.(check string) "first" "first" p
  | _ -> Alcotest.fail "frame 1");
  (match next () with
  | Protocol.Frame p -> Alcotest.(check string) "second" "" p
  | _ -> Alcotest.fail "frame 2");
  (match next () with
  | Protocol.Frame p -> Alcotest.(check string) "third" "third" p
  | _ -> Alcotest.fail "frame 3");
  match next () with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "expected EOF after last frame"

let expect_bad label wire =
  match frame_of_string wire with
  | Protocol.Bad _ -> ()
  | Protocol.Frame _ -> Alcotest.fail (label ^ ": accepted a bad frame")
  | Protocol.Eof -> Alcotest.fail (label ^ ": reported clean EOF")

let test_frame_malformed () =
  expect_bad "truncated payload" "10\nabc";
  expect_bad "truncated header" "12";
  expect_bad "empty header" "\npayload";
  expect_bad "junk header" "12x\npayload";
  expect_bad "negative-ish header" "-2\npayload";
  (* 9 digits always exceeds the 8-digit header bound *)
  expect_bad "huge header" "123456789\npayload";
  (* 8 digits but over max_frame *)
  expect_bad "oversized frame" "99999999\npayload";
  match frame_of_string "" with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "empty stream should be clean EOF"

let test_request_codec () =
  List.iter
    (fun req ->
      match Protocol.decode_client_frame (Protocol.encode_request req) with
      | Ok (Protocol.Req r) ->
          Alcotest.(check string) "text" req.Protocol.text r.Protocol.text;
          Alcotest.(check bool) "deadline" true
            (r.Protocol.deadline = req.Protocol.deadline);
          Alcotest.(check bool) "trace" true
            (r.Protocol.trace = req.Protocol.trace)
      | Ok (Protocol.Hello _) -> Alcotest.fail "request decoded as hello"
      | Error e -> Alcotest.fail e)
    [
      { Protocol.text = "\\tables"; deadline = None; trace = None; data = false };
      {
        Protocol.text = "SELECT 1";
        deadline = Some 2.5;
        trace = None;
        data = false;
      };
      {
        Protocol.text = "line one\nline two";
        deadline = Some 0.125;
        trace = Some (String.make 32 'a');
        data = false;
      };
      { Protocol.text = ""; deadline = None; trace = None; data = false };
      {
        Protocol.text = "SELECT 1";
        deadline = None;
        trace = Some "0123456789abcdef0123456789abcdef";
        data = true;
      };
    ];
  (match Protocol.decode_client_frame "PB2 REQ -1\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative deadline accepted");
  (match Protocol.decode_client_frame "PB2 REQ nan\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nan deadline accepted");
  (* trace= and deadline accepted in either order *)
  (let tid = String.make 32 'c' in
   match
     Protocol.decode_client_frame
       (Printf.sprintf "PB2 REQ trace=%s 1.5\nSELECT 1" tid)
   with
  | Ok (Protocol.Req r) ->
      Alcotest.(check bool) "reordered deadline" true
        (r.Protocol.deadline = Some 1.5);
      Alcotest.(check bool) "reordered trace" true
        (r.Protocol.trace = Some tid)
  | Ok _ | Error _ -> Alcotest.fail "reordered header fields rejected");
  (match
     Protocol.decode_client_frame "PB2 REQ trace=SHOUTY-NOT-HEX\nSELECT 1"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed trace id accepted");
  (match Protocol.decode_client_frame "PB2 REQ trace=abc\nSELECT 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short trace id accepted");
  (let tid = String.make 32 'd' in
   match
     Protocol.decode_client_frame
       (Printf.sprintf "PB2 REQ trace=%s trace=%s\nx" tid tid)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate trace field accepted");
  (* fresh ids are valid and effectively unique *)
  let a = Protocol.fresh_trace_id () and b = Protocol.fresh_trace_id () in
  Alcotest.(check bool) "fresh id valid" true (Protocol.valid_trace_id a);
  Alcotest.(check bool) "fresh ids differ" true (a <> b);
  (match Protocol.decode_client_frame "NOPE\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad verb accepted");
  (* an unversioned v1 request header is recognized and named *)
  match Protocol.decode_client_frame "REQ 2.5\nSELECT 1" with
  | Error msg ->
      Alcotest.(check bool) "names the v1 protocol" true (contains msg "v1")
  | Ok _ -> Alcotest.fail "v1 request header accepted"

let test_hello_codec () =
  (match Protocol.decode_hello (Protocol.encode_hello Protocol.version) with
  | Ok v -> Alcotest.(check int) "version round-trips" Protocol.version v
  | Error e -> Alcotest.fail e);
  (match Protocol.decode_client_frame (Protocol.encode_hello 7) with
  | Ok (Protocol.Hello 7) -> ()
  | _ -> Alcotest.fail "hello frame did not decode");
  (match Protocol.decode_hello "PB2 HELLO seven" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric version accepted");
  (* a v1 response header in place of a hello is named explicitly *)
  match Protocol.decode_hello "OK\nwhatever" with
  | Error msg ->
      Alcotest.(check bool) "names the v1 protocol" true (contains msg "v1")
  | Ok _ -> Alcotest.fail "v1 header accepted as hello"

let test_response_codec () =
  let cases : Protocol.response list =
    [
      { status = Protocol.Ok; body = "plain output" };
      { status = Protocol.Ok; body = "" };
      { status = Protocol.Ok; body = "multi\nline\noutput" };
      { status = Protocol.Busy; body = "server busy" };
      { status = Protocol.Deadline_exceeded; body = "too slow" };
      { status = Protocol.Cancelled; body = "token cancelled" };
      { status = Protocol.Bad_request; body = "what" };
      { status = Protocol.Shutting_down; body = "bye" };
      { status = Protocol.Internal; body = "boom" };
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.decode_response (Protocol.encode_response resp) with
      | Ok r -> Alcotest.(check bool) "response round-trips" true (r = resp)
      | Error e -> Alcotest.fail e)
    cases;
  (match Protocol.decode_response "PB2 gremlins\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown status code accepted");
  match Protocol.decode_response "ERR busy\nx" with
  | Error msg ->
      Alcotest.(check bool) "names the v1 protocol" true (contains msg "v1")
  | Ok _ -> Alcotest.fail "v1 response header accepted"

(* ---- loopback server -------------------------------------------------- *)

let make_db n =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes"
    (Pb_workload.Workload.recipes ~seed:11 ~n ());
  db

let test_config =
  { Server.default_config with port = 0; poll_interval = 0.02 }

let paql_line =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 2 AND SUM(P.calories) <= 2600 MAXIMIZE SUM(P.protein)"

(* A query whose cost is dominated by an unindexed 3-way cross product:
   slow at any pool size, used to trigger deadlines and exercise drain. *)
let slow_sql = "SELECT COUNT(*) FROM recipes a, recipes b, recipes c"

let ok_or_fail (r : Protocol.response) =
  match r.Protocol.status with
  | Protocol.Ok -> r.Protocol.body
  | s ->
      Alcotest.fail
        (Printf.sprintf "unexpected status %s: %s" (Protocol.status_to_string s)
           r.Protocol.body)

(* ---- assembler vs blocking reader, property-checked ------------------- *)

(* Decode a whole byte string with the blocking reader: the frame list
   plus how the stream ended. *)
let blocking_decode s =
  let next = read_frames_of_string s in
  let rec go acc =
    match next () with
    | Protocol.Frame p -> go (p :: acc)
    | Protocol.Eof -> (List.rev acc, `End)
    | Protocol.Bad m -> (List.rev acc, `Bad m)
  in
  go []

(* Decode the same bytes through the assembler, fed in arbitrary slices.
   [`End] here means "awaiting more input", which at end-of-feed is the
   push-style reading of a clean EOF. *)
let assembler_decode slices =
  let asm = Pb_net.Assembler.create () in
  List.iter (fun sl -> Pb_net.Assembler.feed asm sl) slices;
  let rec go acc =
    match Pb_net.Assembler.next asm with
    | `Frame p -> go (p :: acc)
    | `Awaiting -> (List.rev acc, `End)
    | `Bad m -> (List.rev acc, `Bad m)
  in
  go []

(* Cut a string into slices at arbitrary positions derived from [cuts]. *)
let slices_of_cuts s cuts =
  let n = String.length s in
  let positions =
    List.sort_uniq compare
      (0 :: n :: List.map (fun c -> if n = 0 then 0 else c mod (n + 1)) cuts)
  in
  let rec pair = function
    | a :: (b :: _ as rest) -> String.sub s a (b - a) :: pair rest
    | _ -> []
  in
  pair positions

let frame_bytes payload =
  Printf.sprintf "%d\n%s" (String.length payload) payload

let qcheck_assembler_valid_stream =
  QCheck.Test.make ~count:300
    ~name:"assembler: any split of a valid stream = blocking reader"
    QCheck.(
      pair
        (small_list (string_of_size (QCheck.Gen.int_bound 50)))
        (small_list small_nat))
    (fun (payloads, cuts) ->
      let stream = String.concat "" (List.map frame_bytes payloads) in
      let expected = (payloads, `End) in
      blocking_decode stream = expected
      && assembler_decode (slices_of_cuts stream cuts) = expected)

let qcheck_assembler_malformed_stream =
  (* malformed at the header (bad digit, too many digits, empty line):
     the error is visible without end-of-stream, so the push and pull
     readers must agree on the frames before it AND on the message *)
  QCheck.Test.make ~count:300
    ~name:"assembler: malformed header = blocking reader, same message"
    QCheck.(
      quad
        (small_list (string_of_size (QCheck.Gen.int_bound 20)))
        (oneofl [ "x"; "12a"; "123456789"; "-1"; ""; ":"; "7 " ])
        (string_of_size (QCheck.Gen.int_bound 20))
        (small_list small_nat))
    (fun (payloads, bad_header, tail, cuts) ->
      let stream =
        String.concat "" (List.map frame_bytes payloads)
        ^ bad_header ^ "\n" ^ tail
      in
      let b = blocking_decode stream in
      let a = assembler_decode (slices_of_cuts stream cuts) in
      (match snd b with `Bad _ -> true | `End -> false) && a = b)

(* ---- serve modes ------------------------------------------------------ *)

(* The default config exercises the event loop everywhere else in this
   file; this is the regression net for the legacy thread-per-connection
   path, which stays selectable via --serve-mode threads. *)
let test_threads_mode_loopback () =
  let config = { test_config with Server.serve_mode = Server.Threads } in
  Server.with_server ~config (make_db 40) (fun server ->
      let port = Server.port server in
      Client.with_connection ~port (fun c ->
          let count = ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes") in
          Alcotest.(check bool) "sql counts" true (contains count "40");
          let health = ok_or_fail (Client.request c "\\healthz") in
          Alcotest.(check bool) "healthz answers" true
            (contains health "\"status\":\"ok\""));
      (* concurrent sessions still isolated *)
      let results = Array.make 4 "" in
      let worker i () =
        Client.with_connection ~port (fun c ->
            results.(i) <- ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes"))
      in
      let threads = List.init 4 (fun i -> Thread.create (worker i) ()) in
      List.iter Thread.join threads;
      Array.iter
        (fun r -> Alcotest.(check bool) "each client served" true (contains r "40"))
        results)

(* Pipelining backpressure regression: a client that writes many request
   frames in one burst must get every response, in order. The event loop
   drops read interest while a request is in flight, so the burst drains
   frame-by-frame — one admission per completion — instead of being
   slurped whole into the assembler. *)
let test_event_pipelined_burst () =
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
          let ic = Unix.in_channel_of_descr fd in
          let framed payload =
            Printf.sprintf "%d\n%s" (String.length payload) payload
          in
          let write_all s =
            let n = String.length s in
            let rec wr off =
              if off < n then wr (off + Unix.write_substring fd s off (n - off))
            in
            wr 0
          in
          write_all (framed (Protocol.encode_hello Protocol.version));
          (match Protocol.read_frame ic with
          | Protocol.Frame p -> (
              match Protocol.decode_hello p with
              | Ok v -> Alcotest.(check int) "hello version" Protocol.version v
              | Error e -> Alcotest.fail ("bad hello: " ^ e))
          | _ -> Alcotest.fail "no hello frame");
          let reqs = 8 in
          let burst = Buffer.create 256 in
          for _ = 1 to reqs do
            Buffer.add_string burst
              (framed
                 (Protocol.encode_request
                    {
                      Protocol.text = "SELECT COUNT(*) FROM recipes";
                      deadline = None;
                      trace = None;
                      data = false;
                    }))
          done;
          (* the whole burst goes out before any response is read *)
          write_all (Buffer.contents burst);
          for i = 1 to reqs do
            match Protocol.read_frame ic with
            | Protocol.Frame p -> (
                match Protocol.decode_response p with
                | Ok r ->
                    Alcotest.(check bool)
                      (Printf.sprintf "response %d ok" i)
                      true
                      (r.Protocol.status = Protocol.Ok
                      && contains r.Protocol.body "40")
                | Error e -> Alcotest.fail ("bad response: " ^ e))
            | Protocol.Eof -> Alcotest.fail "server closed mid-burst"
            | Protocol.Bad m -> Alcotest.fail ("framing error: " ^ m)
          done))

(* ---- connect timeout --------------------------------------------------- *)

let test_connect_timeout () =
  (* a listener whose accept backlog is saturated never completes the
     client's handshake: without a timeout, connect blocks for the
     kernel's SYN-retry schedule (minutes) *)
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close srv with _ -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen srv 1;
      let port =
        match Unix.getsockname srv with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      (* saturate the backlog with connections nobody accepts *)
      let fillers =
        List.filter_map
          (fun _ ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.set_nonblock fd;
            match
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
            with
            | () -> Some fd
            | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> Some fd
            | exception _ ->
                (try Unix.close fd with _ -> ());
                None)
          (List.init 8 (fun i -> i))
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun fd -> try Unix.close fd with _ -> ()) fillers)
        (fun () ->
          Thread.delay 0.05;
          let t0 = Unix.gettimeofday () in
          (match Client.connect ~connect_timeout:0.4 ~port () with
          | c ->
              (* platform admitted it to the SYN queue anyway: only the
                 bounded-time property is observable *)
              Client.close c
          | exception Client.Net_error msg ->
              Alcotest.(check bool) "reports the timeout" true
                (contains msg "timed out")
          | exception Unix.Unix_error _ -> ());
          let elapsed = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "bounded: %.2fs" elapsed)
            true (elapsed < 5.0)))

let test_loopback_basic () =
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          (* backslash command *)
          let tables = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "tables lists recipes" true
            (contains tables "recipes");
          (* SQL *)
          let count = ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes") in
          Alcotest.(check bool) "sql counts" true (contains count "40");
          (* PaQL *)
          let pkg = ok_or_fail (Client.request c paql_line) in
          Alcotest.(check bool) "package found" true
            (contains pkg "objective:");
          Alcotest.(check bool) "strategy reported" true
            (contains pkg "strategy:");
          (* errors come back in-band and leave the connection usable *)
          let bad = ok_or_fail (Client.request c "SELECT FROM") in
          Alcotest.(check bool) "sql error in-band" true (contains bad "error");
          let again = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "still usable" true (contains again "recipes")))

let test_loopback_session_isolation () =
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      let port = Server.port server in
      Client.with_connection ~port (fun a ->
          Client.with_connection ~port (fun b ->
              (* A runs a PaQL query; B's session has no last package. *)
              ignore (ok_or_fail (Client.request a paql_line));
              let b_save = ok_or_fail (Client.request b "\\save stolen") in
              Alcotest.(check bool) "B cannot save A's package" true
                (contains b_save "nothing to save");
              let a_save = ok_or_fail (Client.request a "\\save mine") in
              Alcotest.(check bool) "A saves its own" true
                (contains a_save "pkg_mine");
              (* the DATA is shared: B sees the saved package table *)
              let b_pkgs = ok_or_fail (Client.request b "\\packages") in
              Alcotest.(check bool) "saved package is shared data" true
                (contains b_pkgs "mine"))))

let test_loopback_concurrent_clients () =
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      let port = Server.port server in
      let failures = Atomic.make 0 in
      let worker i =
        Client.with_connection ~port (fun c ->
            for _ = 1 to 12 do
              (* interleave SQL and PaQL across clients *)
              let r =
                if i mod 2 = 0 then Client.request c "SELECT COUNT(*) FROM recipes"
                else Client.request c paql_line
              in
              if r.Protocol.status <> Protocol.Ok then Atomic.incr failures
              else
                let want = if i mod 2 = 0 then "40" else "objective:" in
                if not (contains r.Protocol.body want) then
                  Atomic.incr failures
            done)
      in
      let threads = List.init 4 (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Alcotest.(check int) "every concurrent request answered correctly" 0
        (Atomic.get failures))

let test_loopback_deadline () =
  Server.with_server ~config:test_config (make_db 100) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          let r = Client.request ~deadline:0.02 c slow_sql in
          (match r.Protocol.status with
          | Protocol.Deadline_exceeded ->
              Alcotest.(check bool) "mentions the deadline" true
                (contains r.Protocol.body "deadline")
          | Protocol.Ok -> Alcotest.fail "slow query beat a 20ms deadline"
          | s ->
              Alcotest.fail
                (Printf.sprintf "wrong status %s: %s"
                   (Protocol.status_to_string s) r.Protocol.body));
          (* the connection survives a deadline error *)
          let after = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "connection usable after deadline" true
            (contains after "recipes")))

let product_rows () =
  match
    List.assoc_opt "pb_sql_product_rows_total" (Pb_obs.Metrics.snapshot ())
  with
  | Some v -> v
  | None -> 0.0

(* Regression for the v1 watchdog leak: a request that overruns its
   deadline must STOP — observable as the row-production counter going
   quiet — and must free its connection slot, not keep a worker thread
   burning CPU behind the client's back. *)
let test_overrun_request_stops () =
  Server.with_server ~config:test_config (make_db 100) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          let r = Client.request ~deadline:0.05 c slow_sql in
          Alcotest.(check string) "deadline status" "deadline"
            (Protocol.status_to_string r.Protocol.status);
          (* once the response is out, the evaluation is dead: the
             planner's row counter stops moving *)
          let s1 = product_rows () in
          Thread.delay 0.15;
          let s2 = product_rows () in
          Alcotest.(check (float 0.0)) "no rows produced after cancel" s1 s2;
          (* the same connection answers a fresh request immediately *)
          let after = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "slot freed after cancel" true
            (contains after "recipes");
          let dump = ok_or_fail (Client.request c "\\metrics") in
          Alcotest.(check bool) "cancellation counted" true
            (contains dump "pb_net_cancelled_total")))

let test_loopback_busy () =
  let config = { test_config with max_connections = 2 } in
  Server.with_server ~config (make_db 20) (fun server ->
      let port = Server.port server in
      Client.with_connection ~port (fun a ->
          Client.with_connection ~port (fun b ->
              (* both admitted connections work *)
              ignore (ok_or_fail (Client.request a "\\tables"));
              ignore (ok_or_fail (Client.request b "\\tables"));
              (* the (max+1)-th is turned away during the handshake *)
              match Client.connect ~port () with
              | exception Client.Rejected (Protocol.Busy, msg) ->
                  Alcotest.(check bool) "says busy" true (contains msg "busy")
              | c ->
                  Client.close c;
                  Alcotest.fail "over-limit connection admitted"));
      (* both slots free again: a new client is admitted *)
      let rec retry n =
        match Client.connect ~port () with
        | exception Client.Rejected (Protocol.Busy, _) when n > 0 ->
            Thread.delay 0.05;
            retry (n - 1)
        | c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> ok_or_fail (Client.request c "\\tables"))
      in
      Alcotest.(check bool) "slot freed after close" true
        (contains (retry 40) "recipes"))

(* Request-level backpressure: with one evaluation slot and no queue, a
   second in-flight request gets [busy] — and the connection that heard
   [busy] stays open and usable. *)
let test_admission_queue_busy () =
  let config = { test_config with max_inflight = 1; max_queue = 0 } in
  Server.with_server ~config (make_db 120) (fun server ->
      let port = Server.port server in
      Client.with_connection ~port (fun a ->
          Client.with_connection ~port (fun b ->
              let slow =
                Thread.create
                  (fun () -> ignore (Client.request ~deadline:0.6 a slow_sql))
                  ()
              in
              Thread.delay 0.15;
              let r = Client.request b "\\tables" in
              Alcotest.(check string) "queue-full rejection" "busy"
                (Protocol.status_to_string r.Protocol.status);
              Thread.join slow;
              (* the slot frees once the slow request is cancelled *)
              let rec retry n =
                let r = Client.request b "\\tables" in
                match r.Protocol.status with
                | Protocol.Ok -> r.Protocol.body
                | Protocol.Busy when n > 0 ->
                    Thread.delay 0.05;
                    retry (n - 1)
                | s ->
                    Alcotest.fail
                      (Protocol.status_to_string s ^ ": " ^ r.Protocol.body)
              in
              Alcotest.(check bool) "connection survives busy" true
                (contains (retry 40) "recipes"))))

(* A v1 peer (unversioned REQ header, no hello) is answered with a
   [proto] error naming the mismatch, not line noise. *)
let test_server_names_v1_peer () =
  Server.with_server ~config:test_config (make_db 10) (fun server ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Protocol.write_frame oc "REQ\n\\tables";
          match Protocol.read_frame ic with
          | Protocol.Frame payload -> (
              match Protocol.decode_response payload with
              | Ok r ->
                  Alcotest.(check string) "proto status" "proto"
                    (Protocol.status_to_string r.Protocol.status);
                  Alcotest.(check bool) "names the v1 protocol" true
                    (contains r.Protocol.body "v1")
              | Error e -> Alcotest.fail e)
          | _ -> Alcotest.fail "no response to the v1 request"))

(* The client refuses a server that answers the handshake with a
   different version. *)
let test_client_refuses_mismatch () =
  let listen = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen 1;
  let port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let srv =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept ~cloexec:true listen in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        ignore (Protocol.read_frame ic);
        (try Protocol.write_frame oc (Protocol.encode_hello 99)
         with Sys_error _ -> ());
        ignore (Protocol.read_frame ic);
        close_out_noerr oc)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen with Unix.Unix_error _ -> ());
      Thread.join srv)
    (fun () ->
      match Client.connect ~port () with
      | exception Client.Net_error msg ->
          Alcotest.(check bool) "names the versions" true
            (contains msg "version")
      | c ->
          Client.close c;
          Alcotest.fail "connected across a version mismatch")

let test_shutdown_drains () =
  let db = make_db 70 in
  let server = Server.start ~config:test_config db in
  let port = Server.port server in
  let result = ref { Protocol.status = Protocol.Internal; body = "unset" } in
  let client_thread =
    Thread.create
      (fun () ->
        Client.with_connection ~port (fun c ->
            result := Client.request c slow_sql))
      ()
  in
  (* let the slow request reach the server, then shut down mid-flight *)
  Thread.delay 0.2;
  Server.shutdown server;
  Thread.join client_thread;
  (match !result with
  | { Protocol.status = Protocol.Ok; body } ->
      (* 70^3 product rows *)
      Alcotest.(check bool) "in-flight request completed during drain" true
        (contains body "343000")
  | { Protocol.status = s; body } ->
      Alcotest.fail
        (Printf.sprintf "drained request failed with %s: %s"
           (Protocol.status_to_string s) body));
  (* the listener is gone: connecting now fails *)
  match Client.connect ~port () with
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
  | exception _ -> ()
  | c ->
      (* accept backlog raced the close; the server must at least not
         serve the connection *)
      Client.close c;
      Alcotest.fail "server still accepting after shutdown"

let test_shutdown_idempotent () =
  let server = Server.start ~config:test_config (make_db 10) in
  Server.shutdown server;
  Server.shutdown server;
  (* and with_server's finally also tolerates an early explicit stop *)
  Server.with_server ~config:test_config (make_db 10) (fun s ->
      Server.shutdown s)

let test_metrics_exposed () =
  Server.with_server ~config:test_config (make_db 20) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          ignore (ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes"));
          let dump = ok_or_fail (Client.request c "\\metrics") in
          Alcotest.(check bool) "request counter exposed" true
            (contains dump "pb_net_requests_total");
          Alcotest.(check bool) "active connection gauge exposed" true
            (contains dump "pb_net_active_connections");
          Alcotest.(check bool) "inflight gauge exposed" true
            (contains dump "pb_net_inflight_requests");
          Alcotest.(check bool) "queue depth gauge exposed" true
            (contains dump "pb_net_queue_depth");
          Alcotest.(check bool) "cancellation counter exposed" true
            (contains dump "pb_net_cancelled_total");
          Alcotest.(check bool) "latency histogram exposed" true
            (contains dump "pb_net_sql_request_seconds")))

(* ---- tracing + exposition --------------------------------------------- *)

(* Tentpole leg 1: a client-generated trace id rides the wire-v2 header,
   the server adopts it as the root of the request's span tree, and the
   tree is retrievable under that exact id — over the wire (\traces) and
   over HTTP (/traces/<id>). *)
let test_trace_propagation () =
  Pb_obs.Trace_store.clear Pb_obs.Trace_store.default;
  Server.with_server ~config:test_config (make_db 40) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          let id = Protocol.fresh_trace_id () in
          ignore (ok_or_fail (Client.request ~trace:id c paql_line));
          (* \traces <id>: the retained tree is headed by OUR id *)
          let tree = ok_or_fail (Client.request c ("\\traces " ^ id)) in
          Alcotest.(check bool) "tree headed by the client's id" true
            (contains tree ("trace " ^ id));
          Alcotest.(check bool) "root request span present" true
            (contains tree "request");
          Alcotest.(check bool) "engine span nested inside" true
            (contains tree "engine.run");
          (* /traces/<id>: the JSON tree's root span id IS the trace id *)
          (match Server.http_handler server ("/traces/" ^ id) with
          | Some { Pb_obs.Http.code; content_type; body } ->
              Alcotest.(check int) "trace endpoint 200" 200 code;
              Alcotest.(check bool) "json content type" true
                (contains content_type "json");
              Alcotest.(check bool) "trace_id field" true
                (contains body (Printf.sprintf "\"trace_id\":%S" id));
              Alcotest.(check bool) "root span id substituted" true
                (contains body (Printf.sprintf "\"id\":%S" id))
          | None -> Alcotest.fail "traced request not retrievable over HTTP");
          (* unknown ids are a 404, not an empty tree *)
          match Server.http_handler server ("/traces/" ^ String.make 32 'f') with
          | None -> ()
          | Some _ -> Alcotest.fail "unknown trace id served"))

(* Backward compatibility within v2: a request with no trace= field is
   still traced, under a server-generated id. *)
let test_trace_server_generated_id () =
  Pb_obs.Trace_store.clear Pb_obs.Trace_store.default;
  Server.with_server ~config:test_config (make_db 20) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          ignore (ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes"));
          let ids = Pb_obs.Trace_store.ids Pb_obs.Trace_store.default in
          Alcotest.(check bool) "untraced request was retained" true
            (List.length ids >= 1);
          let gen = List.hd ids in
          Alcotest.(check bool) "server-generated id is well-formed" true
            (Protocol.valid_trace_id gen);
          let shown = ok_or_fail (Client.request c ("\\traces " ^ gen)) in
          Alcotest.(check bool) "retrievable under the generated id" true
            (contains shown ("trace " ^ gen));
          (* and \traces with no argument lists it *)
          let listing = ok_or_fail (Client.request c "\\traces") in
          Alcotest.(check bool) "listing includes the id" true
            (contains listing gen)))

(* trace_capacity = 0 is the documented zero-overhead baseline: nothing
   is retained and \traces says so. *)
let test_trace_disabled () =
  Pb_obs.Trace_store.clear Pb_obs.Trace_store.default;
  let config = { test_config with trace_capacity = 0 } in
  Server.with_server ~config (make_db 20) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          let id = Protocol.fresh_trace_id () in
          ignore (ok_or_fail (Client.request ~trace:id c "\\tables"));
          Alcotest.(check int) "nothing retained" 0
            (Pb_obs.Trace_store.length Pb_obs.Trace_store.default);
          let shown = ok_or_fail (Client.request c ("\\traces " ^ id)) in
          Alcotest.(check bool) "\\traces reports no such trace" true
            (contains shown "no retained trace")))

let gauge name =
  match List.assoc_opt name (Pb_obs.Metrics.snapshot ()) with
  | Some v -> v
  | None -> Alcotest.fail (name ^ " not in metrics snapshot")

let wait_gauges_zero () =
  let rec go n =
    if gauge "pb_net_inflight_requests" = 0.0
       && gauge "pb_net_queue_depth" = 0.0
    then ()
    else if n = 0 then
      Alcotest.fail
        (Printf.sprintf "gauges stuck: inflight=%g queue=%g"
           (gauge "pb_net_inflight_requests")
           (gauge "pb_net_queue_depth"))
    else begin
      Thread.delay 0.05;
      go (n - 1)
    end
  in
  go 60

(* Regression: the admission gauges must return to zero when a handler
   raises (the \panic crash lever) — the release sits in a Fun.protect,
   not on the happy path. *)
let test_gauges_zero_after_handler_raise () =
  Server.with_server ~config:test_config (make_db 20) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          let r = Client.request c "\\panic boom" in
          Alcotest.(check string) "handler raise surfaces as internal"
            "internal"
            (Protocol.status_to_string r.Protocol.status);
          Alcotest.(check bool) "message carried" true
            (contains r.Protocol.body "boom");
          wait_gauges_zero ();
          (* the connection survives the crash *)
          let after = ok_or_fail (Client.request c "\\tables") in
          Alcotest.(check bool) "connection usable after raise" true
            (contains after "recipes")))

(* Regression: a client vanishing mid-request must not leak its
   admission slot — the response write fails, but the gauges drain. *)
let test_gauges_zero_after_disconnect () =
  Server.with_server ~config:test_config (make_db 60) (fun server ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      Protocol.write_frame oc (Protocol.encode_hello Protocol.version);
      (match Protocol.read_frame ic with
      | Protocol.Frame _ -> ()
      | _ -> Alcotest.fail "no hello reply");
      Protocol.write_frame oc
        (Protocol.encode_request
           {
             Protocol.text = slow_sql;
             deadline = Some 0.3;
             trace = None;
             data = false;
           });
      (* hang up while the request is evaluating *)
      Thread.delay 0.05;
      close_out_noerr oc;
      wait_gauges_zero ();
      (* and the server still serves new clients *)
      Client.with_connection ~port:(Server.port server) (fun c ->
          Alcotest.(check bool) "server healthy after disconnect" true
            (contains (ok_or_fail (Client.request c "\\tables")) "recipes")))

(* The HTTP endpoints the standalone exposition server mounts. *)
let test_http_handler_endpoints () =
  Server.with_server ~config:test_config (make_db 20) (fun server ->
      Client.with_connection ~port:(Server.port server) (fun c ->
          ignore (ok_or_fail (Client.request c "SELECT COUNT(*) FROM recipes")));
      (match Server.http_handler server "/metrics" with
      | Some { Pb_obs.Http.code; content_type; body } ->
          Alcotest.(check int) "metrics 200" 200 code;
          Alcotest.(check bool) "prometheus content type" true
            (contains content_type "text/plain; version=0.0.4");
          Alcotest.(check bool) "exposition has TYPE lines" true
            (contains body "# TYPE pb_net_requests_total counter");
          Alcotest.(check bool) "request counter sampled" true
            (contains body "pb_net_requests_total")
      | None -> Alcotest.fail "/metrics unmounted");
      (match Server.http_handler server "/healthz" with
      | Some { Pb_obs.Http.code; content_type; body } ->
          Alcotest.(check int) "healthz 200" 200 code;
          Alcotest.(check bool) "json content type" true
            (contains content_type "application/json");
          Alcotest.(check bool) "reports ok" true
            (contains body "\"status\":\"ok\"");
          Alcotest.(check bool) "reports limits" true
            (contains body "\"max_inflight\"")
      | None -> Alcotest.fail "/healthz unmounted");
      (match Server.http_handler server "/traces" with
      | Some { Pb_obs.Http.body; _ } ->
          Alcotest.(check bool) "trace index is json" true
            (contains body "\"traces\":[")
      | None -> Alcotest.fail "/traces unmounted");
      match Server.http_handler server "/nope" with
      | None -> ()
      | Some _ -> Alcotest.fail "unknown path served")

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame streaming" `Quick test_frame_streaming;
    Alcotest.test_case "malformed frames" `Quick test_frame_malformed;
    Alcotest.test_case "request codec" `Quick test_request_codec;
    Alcotest.test_case "hello codec" `Quick test_hello_codec;
    Alcotest.test_case "response codec" `Quick test_response_codec;
    Alcotest.test_case "loopback PaQL/SQL/commands" `Quick test_loopback_basic;
    Alcotest.test_case "per-session isolation" `Quick
      test_loopback_session_isolation;
    Alcotest.test_case "concurrent clients" `Quick
      test_loopback_concurrent_clients;
    Alcotest.test_case "deadline exceeded, connection survives" `Quick
      test_loopback_deadline;
    Alcotest.test_case "overrun request stops consuming (leak regression)"
      `Quick test_overrun_request_stops;
    Alcotest.test_case "max-connections busy rejection" `Quick
      test_loopback_busy;
    Alcotest.test_case "admission queue backpressure" `Quick
      test_admission_queue_busy;
    Alcotest.test_case "server names a v1 peer" `Quick
      test_server_names_v1_peer;
    Alcotest.test_case "client refuses version mismatch" `Quick
      test_client_refuses_mismatch;
    Alcotest.test_case "shutdown drains in-flight requests" `Quick
      test_shutdown_drains;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "net metrics exposed" `Quick test_metrics_exposed;
    Alcotest.test_case "trace id propagates client -> server -> tree" `Quick
      test_trace_propagation;
    Alcotest.test_case "untraced request gets a server-generated id" `Quick
      test_trace_server_generated_id;
    Alcotest.test_case "trace capacity 0 disables retention" `Quick
      test_trace_disabled;
    Alcotest.test_case "gauges return to zero after handler raise" `Quick
      test_gauges_zero_after_handler_raise;
    Alcotest.test_case "gauges return to zero after mid-request disconnect"
      `Quick test_gauges_zero_after_disconnect;
    Alcotest.test_case "http handler endpoints" `Quick
      test_http_handler_endpoints;
    Alcotest.test_case "threads serve-mode loopback" `Quick
      test_threads_mode_loopback;
    Alcotest.test_case "event loop serves a pipelined burst" `Quick
      test_event_pipelined_burst;
    Alcotest.test_case "connect timeout is bounded" `Quick test_connect_timeout;
    QCheck_alcotest.to_alcotest qcheck_assembler_valid_stream;
    QCheck_alcotest.to_alcotest qcheck_assembler_malformed_stream;
  ]
