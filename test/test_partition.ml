(* Unit tests for the SketchRefine partitioner (lib/core/partition.ml)
   and for the sketch-refine strategy's determinism and governance
   contracts: partitions must be a disjoint complete cover with
   in-bounds centroids on any input (including degenerate ones), the
   whole strategy must be bit-identical at PB_DOMAINS=1 vs 8, and a
   deadline that fires mid-refine must surrender the current incumbent
   as [Feasible] — never [Cancelled] with a package in hand — leaving
   no refine MILP running behind the caller's back. *)

module Partition = Pb_core.Partition
module Coeffs = Pb_core.Coeffs
module Engine = Pb_core.Engine
module Gov = Pb_util.Gov
module Pool = Pb_par.Pool
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema

(* ---- partitioner invariants ----------------------------------------- *)

let random_features ~seed ~n ~d =
  let st = Random.State.make [| seed |] in
  Array.init d (fun _ ->
      Array.init n (fun _ -> float_of_int (Random.State.int st 1000)))

(* Disjointness, completeness, per-group ordering, size accounting and
   the group-count ceiling, straight from the partition.mli contract. *)
let check_invariants name (t : Partition.t) ~n ~target =
  let groups = t.Partition.groups in
  if n = 0 then
    Alcotest.(check int) (name ^ ": empty input, no groups") 0
      (Array.length groups)
  else begin
    Alcotest.(check bool)
      (name ^ ": group count in [1, min target n]")
      true
      (let g = Array.length groups in
       g >= 1 && g <= max 1 (min target n));
    let seen = Array.make n false in
    Array.iter
      (fun g ->
        Alcotest.(check bool) (name ^ ": nonempty group") true
          (Array.length g > 0);
        Array.iteri
          (fun i idx ->
            Alcotest.(check bool) (name ^ ": index in range") true
              (idx >= 0 && idx < n);
            Alcotest.(check bool) (name ^ ": disjoint groups") false seen.(idx);
            seen.(idx) <- true;
            if i > 0 then
              Alcotest.(check bool) (name ^ ": ascending within group") true
                (g.(i - 1) < idx))
          g)
      groups;
    Alcotest.(check bool) (name ^ ": complete cover") true
      (Array.for_all Fun.id seen);
    Alcotest.(check int)
      (name ^ ": sizes sum to n")
      n
      (Array.fold_left (fun acc g -> acc + Array.length g) 0 groups)
  end

(* Every centroid coordinate lies within its group's per-feature
   [min, max] envelope. *)
let check_centroids name (t : Partition.t) ~features =
  Array.iteri
    (fun gi g ->
      Array.iteri
        (fun dim f ->
          let lo = Array.fold_left (fun a i -> Float.min a f.(i)) infinity g in
          let hi =
            Array.fold_left (fun a i -> Float.max a f.(i)) neg_infinity g
          in
          let c = t.Partition.centroids.(gi).(dim) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: centroid (%d,%d) within [%g, %g]" name gi dim
               lo hi)
            true
            (c >= lo -. 1e-9 && c <= hi +. 1e-9))
        features)
    t.Partition.groups

let test_invariants_random () =
  List.iter
    (fun (n, d, target, seed) ->
      let features = random_features ~seed ~n ~d in
      let t = Partition.build ~target ~features ~n in
      let name = Printf.sprintf "n=%d d=%d target=%d" n d target in
      check_invariants name t ~n ~target;
      check_centroids name t ~features;
      (* group_of must agree with the groups arrays *)
      Array.iteri
        (fun gi g ->
          Array.iter
            (fun idx ->
              Alcotest.(check int)
                (name ^ ": group_of agrees")
                gi
                (Partition.group_of t idx))
            g)
        t.Partition.groups)
    [ (500, 2, 23, 1); (64, 1, 8, 2); (100, 3, 100, 3); (17, 2, 5, 4) ]

let test_degenerate () =
  (* one row *)
  let t = Partition.build ~target:4 ~features:[| [| 3.0 |] |] ~n:1 in
  check_invariants "n=1" t ~n:1 ~target:4;
  Alcotest.(check int) "n=1: one group" 1 (Partition.group_count t);
  (* empty input *)
  let t0 = Partition.build ~target:4 ~features:[| [||] |] ~n:0 in
  Alcotest.(check int) "n=0: no groups" 0 (Partition.group_count t0);
  (* all rows identical: nothing to split on, one group *)
  let const = Array.make 40 7.5 in
  let tc = Partition.build ~target:8 ~features:[| const; const |] ~n:40 in
  check_invariants "all-identical" tc ~n:40 ~target:8;
  Alcotest.(check int) "all-identical: one group" 1 (Partition.group_count tc);
  (* no features at all (objective-less COUNT-only query): one group *)
  let tf = Partition.build ~target:5 ~features:[||] ~n:10 in
  check_invariants "no features" tf ~n:10 ~target:5;
  Alcotest.(check int) "no features: one group" 1 (Partition.group_count tf);
  (* fewer rows than requested partitions: clamps to n singleton groups *)
  let distinct = Array.init 5 float_of_int in
  let ts = Partition.build ~target:50 ~features:[| distinct |] ~n:5 in
  check_invariants "target>n" ts ~n:5 ~target:50;
  Alcotest.(check int) "target>n: n singleton groups" 5
    (Partition.group_count ts);
  (* nonpositive target clamps to one group *)
  let tz = Partition.build ~target:0 ~features:[| distinct |] ~n:5 in
  check_invariants "target=0" tz ~n:5 ~target:1;
  Alcotest.(check int) "target=0: one group" 1 (Partition.group_count tz)

let test_build_deterministic () =
  let features = random_features ~seed:9 ~n:300 ~d:2 in
  let t1 = Partition.build ~target:17 ~features ~n:300 in
  let t2 = Partition.build ~target:17 ~features ~n:300 in
  Alcotest.(check bool) "two builds are structurally equal" true (t1 = t2)

(* ---- sketch-refine strategy: determinism across pool sizes ----------- *)

let mk_db ?(b_range = 100) ~seed n =
  let st = Random.State.make [| seed |] in
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "a"; ty = Value.T_int };
        { Schema.name = "b"; ty = Value.T_int };
      ]
  in
  let rows =
    List.init n (fun i ->
        [|
          Value.Int (i + 1);
          Value.Int (1 + Random.State.int st 50);
          Value.Int (Random.State.int st b_range);
        |])
  in
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "t" (Relation.create schema rows);
  db

let fingerprint (r : Engine.result) =
  ( (match r.package with
    | None -> []
    | Some p -> Array.to_list (Pb_paql.Package.multiplicities p)),
    r.objective,
    Engine.proof_to_string r.proof,
    r.stats )

let test_pool_determinism () =
  let query =
    "SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(*) BETWEEN 1 AND 6 AND \
     SUM(P.a) <= 60 MAXIMIZE SUM(P.b)"
  in
  let run pool_size =
    Pool.with_pool pool_size (fun pool ->
        let db = mk_db ~seed:7 300 in
        let q = Pb_paql.Parser.parse query in
        Engine.run ~pool ~gov:(Gov.unlimited ())
          ~strategy:
            (Engine.Sketch_refine
               { Pb_core.Sketch_refine.partitions = Some 20; fanout = 4; prepartition = None })
          db q)
  in
  let r1 = run 1 and r8 = run 8 in
  Alcotest.(check bool) "found a package" true (Option.is_some r1.package);
  Alcotest.(check bool) "pool size 1 and 8 bit-identical" true
    (fingerprint r1 = fingerprint r8)

(* ---- governance: deadline mid-refine -------------------------------- *)

let milp_nodes_total () =
  match
    List.assoc_opt "pb_milp_nodes_total" (Pb_obs.Metrics.snapshot ())
  with
  | Some v -> v
  | None -> 0.0

(* A deadline that fires while refine legs are in flight must produce
   [Feasible] with the current incumbent — never [Cancelled] when a
   package is already in hand — and must join every leg before
   returning: the global branch-and-bound node counter has to be
   completely still afterwards. The instance (many small partitions,
   a wide COUNT window spreading sketch mass across dozens of them) is
   sized so refinement takes far longer than the deadline, while the
   sketch itself finishes almost immediately and seeds an incumbent.
   Deadlines race the machine, so we try a ladder of budgets and
   require that at least one run is actually stopped mid-refine. *)
let test_deadline_mid_refine () =
  (* near-unique b values spread the sketch mass across dozens of small
     partitions, so refinement takes many rounds while the sketch (and
     its first materialised incumbent) completes almost immediately *)
  let db = mk_db ~b_range:1_000_000 ~seed:11 20_000 in
  let q =
    Pb_paql.Parser.parse
      "SELECT PACKAGE(R) AS P FROM t R SUCH THAT COUNT(*) BETWEEN 100 AND \
       150 MAXIMIZE SUM(P.b)"
  in
  let c = Coeffs.make db q in
  let attempt deadline =
    let gov = Gov.create ~deadline_in:deadline ~milp_nodes:0 () in
    Engine.run_coeffs ~gov
      ~strategy:
        (Engine.Sketch_refine
           { Pb_core.Sketch_refine.partitions = Some 2000; fanout = 4; prepartition = None })
      db c
  in
  let stopped (r : Engine.result) =
    List.mem ("stopped", "deadline") r.stats
  in
  let debug = Sys.getenv_opt "PB_TEST_DEBUG" <> None in
  let rec find = function
    | [] -> None
    | d :: rest -> (
        let r = attempt d in
        if debug then
          Printf.eprintf "attempt d=%g stopped=%b package=%b proof=%s stats=[%s]\n%!"
            d (stopped r) (Option.is_some r.package)
            (Engine.proof_to_string r.proof)
            (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) r.stats));
        match (stopped r, r.package) with
        | true, Some _ -> Some r
        | _ -> find rest)
  in
  (* The stop window — after the sketch seeds an incumbent, before the
     last refine leg lands — shifts with pool size and machine load: a
     bigger domain pool makes the sketch phase *slower* (pool sync
     overhead on one LP), while full refinement of 2000 partitions
     stays tens of seconds at any size. So the ladder must reach well
     past the sketch time of the slowest configuration; the larger
     rungs are still deadline-stopped long before refinement ends. *)
  let ladder =
    [ 0.2; 0.12; 0.25; 0.06; 0.35; 0.03; 0.5; 0.7; 1.0; 1.5; 2.0; 3.0 ]
  in
  match find ladder with
  | None ->
      Alcotest.fail
        "no attempt was deadline-stopped mid-refine with an incumbent in hand"
  | Some r ->
      (match r.proof with
      | Engine.Feasible -> ()
      | p ->
          Alcotest.failf
            "deadline stop with an incumbent must be Feasible, got %s"
            (Engine.proof_to_string p));
      (match r.package with
      | Some pkg ->
          Alcotest.(check bool) "incumbent satisfies all constraints" true
            (Coeffs.check c pkg)
      | None -> assert false);
      (* no orphaned refine MILP: the node counter must be still *)
      let s1 = milp_nodes_total () in
      Thread.delay 0.15;
      let s2 = milp_nodes_total () in
      Alcotest.(check (float 0.0)) "no MILP still running after return" s1 s2

let suite =
  [
    Alcotest.test_case "partition invariants on random inputs" `Quick
      test_invariants_random;
    Alcotest.test_case "partition degenerate inputs" `Quick test_degenerate;
    Alcotest.test_case "partition build is deterministic" `Quick
      test_build_deterministic;
    Alcotest.test_case "sketch-refine identical at pool size 1 vs 8" `Quick
      test_pool_determinism;
    Alcotest.test_case "deadline mid-refine yields Feasible incumbent" `Slow
      test_deadline_mid_refine;
  ]
