(* Differential tests for the columnar storage engine: the contract is
   bit-identical results — same rows, same order, same Int/Float tags —
   between PB_STORE=row (the interpreter oracle) and PB_STORE=columnar
   (Pb_store tables + batch kernels) on the same SQL, plus exact
   roundtrips through Table.of_relation and Persist.save_dir. Instances
   are drawn from a small row pool so duplicate tuples (multiplicity
   compression), NULLs in every column type, NaN floats and dictionary
   strings all show up with high probability. *)

module Gen = QCheck.Gen
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Mode = Pb_store.Mode
module Table = Pb_store.Table
module Database = Pb_sql.Database
module Executor = Pb_sql.Executor
module Coeffs = Pb_core.Coeffs

let with_mode mode f =
  let saved = Mode.current () in
  Mode.set mode;
  Fun.protect ~finally:(fun () -> Mode.set saved) f

(* %h renders floats exactly (hex), so 0. vs -0. and NaN survive the
   trip into a comparison string; the leading tag letter catches a
   kernel returning Float where the interpreter returns Int. *)
let value_repr = function
  | Value.Null -> "NULL"
  | Value.Int i -> Printf.sprintf "I%d" i
  | Value.Float f -> Printf.sprintf "F%h" f
  | Value.Bool b -> Printf.sprintf "B%b" b
  | Value.Str s -> Printf.sprintf "S%S" s

let row_repr row =
  String.concat "|" (List.map value_repr (Array.to_list row))

let rel_repr rel =
  let header =
    String.concat "|"
      (List.map
         (fun { Schema.name; ty } ->
           name ^ ":" ^ (match ty with
                        | Value.T_int -> "i"
                        | Value.T_float -> "f"
                        | Value.T_bool -> "b"
                        | Value.T_str -> "s"))
         (Schema.columns (Relation.schema rel)))
  in
  String.concat "\n" (header :: List.map row_repr (Relation.to_list rel))

let result_repr = function
  | Executor.Rows rel -> rel_repr rel
  | Executor.Affected n -> Printf.sprintf "affected %d" n
  | Executor.Created -> "created"

(* ------------------------------------------------------------------ *)
(* Random instances: rows over (v INT, f FLOAT, s TEXT, b BOOL), each
   picked from a pool of at most six distinct tuples.                  *)

let schema =
  Schema.make
    [
      { Schema.name = "v"; ty = Value.T_int };
      { Schema.name = "f"; ty = Value.T_float };
      { Schema.name = "s"; ty = Value.T_str };
      { Schema.name = "b"; ty = Value.T_bool };
    ]

let cell_int =
  Gen.oneof
    [
      Gen.return Value.Null;
      Gen.map (fun i -> Value.Int i) (Gen.int_range (-2) 6);
    ]

let cell_float =
  Gen.oneof
    [
      Gen.return Value.Null;
      Gen.map
        (fun f -> Value.Float f)
        (Gen.oneofl [ 0.0; -0.0; 1.5; -2.25; 3.75; Float.nan ]);
    ]

let cell_str =
  Gen.oneof
    [
      Gen.return Value.Null;
      Gen.map
        (fun s -> Value.Str s)
        (Gen.oneofl [ "aa"; "ab"; "ba"; ""; "NULL"; "a,b" ]);
    ]

let cell_bool =
  Gen.oneof
    [ Gen.return Value.Null; Gen.map (fun b -> Value.Bool b) Gen.bool ]

let tuple_gen =
  Gen.map
    (fun (v, f, s, b) -> [| v; f; s; b |])
    (Gen.quad cell_int cell_float cell_str cell_bool)

type inst = { rows : Value.t array list }

let inst_gen =
  let open Gen in
  let* pool_n = int_range 1 6 in
  let* pool = list_repeat pool_n tuple_gen in
  let* n = int_range 0 30 in
  let* rows = list_repeat n (oneofl pool) in
  return { rows }

let print_inst i =
  String.concat " ; " (List.map row_repr i.rows)

(* Every statement below must behave identically in both modes — DML
   included, since updates invalidate the columnar image and the next
   scan rebuilds it. Statements the batch compiler bails on (e.g. the
   self-join) are equally part of the contract: bail means "fall back to
   the row path", never "answer differently". *)
let statements =
  [
    "SELECT * FROM t";
    "SELECT s, v FROM t WHERE v > 2";
    "SELECT * FROM t WHERE f < 1.0 OR v IS NULL";
    "SELECT * FROM t WHERE s LIKE '%a%'";
    "SELECT * FROM t WHERE s = 'aa' AND b = TRUE";
    "SELECT * FROM t WHERE v IN (1, 2, 5) OR s IN ('ba', 'NULL')";
    "SELECT * FROM t WHERE v BETWEEN 0 AND 4";
    "SELECT * FROM t WHERE NOT (v <= 3)";
    "SELECT v * 2 + 1, f / 2.0, v - f, -v FROM t";
    "SELECT length(s), upper(s), abs(v), round(f) FROM t WHERE v IS NOT NULL";
    "SELECT s, COUNT(*), SUM(v), AVG(f), MIN(v), MAX(f) FROM t GROUP BY s \
     ORDER BY s";
    "SELECT COUNT(*), SUM(f), SUM(v) FROM t";
    "SELECT * FROM t WHERE v = f";
    "SELECT * FROM t ORDER BY v, f, s, b LIMIT 4 OFFSET 1";
    "SELECT a.v, b.v FROM t a, t b WHERE a.v < b.v ORDER BY a.v, b.v";
    "UPDATE t SET v = v + 1 WHERE v > 1";
    "SELECT * FROM t";
    "UPDATE t SET s = 'zz' WHERE f IS NULL";
    "DELETE FROM t WHERE v IN (3, 4)";
    "SELECT * FROM t";
  ]

let run_session mode rows =
  with_mode mode (fun () ->
      let db = Database.create () in
      Database.put db "t" (Relation.create schema rows);
      List.map
        (fun sql ->
          match Executor.execute_sql db sql with
          | r -> result_repr r
          | exception Executor.Eval_error msg -> "error " ^ msg)
        statements)

let prop_differential =
  QCheck.Test.make ~count:150 ~name:"columnar session == row session"
    (QCheck.make ~print:print_inst inst_gen)
    (fun i ->
      let row_out = run_session Mode.Row i.rows in
      let col_out = run_session Mode.Columnar i.rows in
      List.iter2
        (fun (sql, r) c ->
          if r <> c then
            QCheck.Test.fail_reportf "on %s\nrow:\n%s\ncolumnar:\n%s" sql r c)
        (List.combine statements row_out)
        col_out;
      true)

(* Table roundtrip: of_relation must compress duplicates yet to_relation
   must replay the original rows exactly, order included. *)
let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Table.of_relation/to_relation roundtrip"
    (QCheck.make ~print:print_inst inst_gen)
    (fun i ->
      let rel = Relation.create schema i.rows in
      let tbl = Table.of_relation rel in
      let n = List.length i.rows in
      if Table.total tbl <> n then
        QCheck.Test.fail_reportf "total %d <> %d rows" (Table.total tbl) n;
      let mult_sum = ref 0 in
      for id = 0 to Table.distinct tbl - 1 do
        let m = Table.multiplicity tbl id in
        if m < 1 then QCheck.Test.fail_reportf "multiplicity %d for id %d" m id;
        mult_sum := !mult_sum + m
      done;
      if !mult_sum <> n then
        QCheck.Test.fail_reportf "multiplicities sum to %d <> %d" !mult_sum n;
      let back = rel_repr (Table.to_relation tbl) in
      let orig = rel_repr rel in
      if back <> orig then
        QCheck.Test.fail_reportf "roundtrip mismatch\norig:\n%s\nback:\n%s"
          orig back;
      true)

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests.                                           *)

let dup_rows =
  [
    [| Value.Int 1; Value.Float 1.5; Value.Str "rice"; Value.Bool true |];
    [| Value.Int 1; Value.Float 1.5; Value.Str "rice"; Value.Bool true |];
    [| Value.Int 1; Value.Float 1.5; Value.Str "rice"; Value.Bool true |];
    (* No empty string here: the CSV persist format cannot distinguish
       TEXT '' from NULL on reload (an orthogonal, mode-independent
       limitation), and this fixture also feeds the persist roundtrip. *)
    [| Value.Null; Value.Float Float.nan; Value.Str "oat"; Value.Null |];
    [| Value.Int 4; Value.Null; Value.Null; Value.Bool false |];
    [| Value.Int 1; Value.Float 1.5; Value.Str "rice"; Value.Bool true |];
  ]

let test_compression () =
  let tbl = Table.of_relation (Relation.create schema dup_rows) in
  Alcotest.(check bool) "compressed" true (Table.compressed tbl);
  Alcotest.(check int) "total" 6 (Table.total tbl);
  Alcotest.(check int) "distinct" 3 (Table.distinct tbl);
  Alcotest.(check bool) "order present" true (Table.order tbl <> None);
  Alcotest.(check string) "rows replayed in insertion order"
    (rel_repr (Relation.create schema dup_rows))
    (rel_repr (Table.to_relation tbl))

let test_uncompressed () =
  let rows =
    List.init 5 (fun i ->
        [| Value.Int i; Value.Float (float_of_int i); Value.Str "x";
           Value.Bool (i mod 2 = 0) |])
  in
  let tbl = Table.of_relation (Relation.create schema rows) in
  Alcotest.(check bool) "not compressed" false (Table.compressed tbl);
  Alcotest.(check int) "distinct = total" (Table.total tbl)
    (Table.distinct tbl);
  Alcotest.(check string) "identity roundtrip"
    (rel_repr (Relation.create schema rows))
    (rel_repr (Table.to_relation tbl))

(* save_dir streams through the columnar image when one is resident; the
   bytes on disk must not depend on the storage mode, and a reload must
   reproduce the relation exactly. *)
let test_persist_mode_independent () =
  let mk () =
    let db = Database.create () in
    Database.put db "pantry" (Relation.create schema dup_rows);
    db
  in
  let tmp suffix =
    let dir = Filename.temp_file "pb_columnar" suffix in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    dir
  in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let dir_row = tmp "_row" and dir_col = tmp "_col" in
  with_mode Mode.Row (fun () -> Pb_sql.Persist.save_dir (mk ()) dir_row);
  with_mode Mode.Columnar (fun () ->
      let db = mk () in
      (* Warm the columnar cache so save_dir takes the compressed path. *)
      ignore (Executor.execute_sql db "SELECT COUNT(*) FROM pantry");
      Pb_sql.Persist.save_dir db dir_col);
  Alcotest.(check string) "CSV bytes identical across modes"
    (read_file (Filename.concat dir_row "pantry.csv"))
    (read_file (Filename.concat dir_col "pantry.csv"));
  let loaded = Pb_sql.Persist.load_dir dir_col in
  Alcotest.(check string) "reload reproduces the relation"
    (rel_repr (Relation.create schema dup_rows))
    (rel_repr (Database.find_exn loaded "pantry"));
  List.iter
    (fun dir ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    [ dir_row; dir_col ]

(* PaQL coefficient extraction: candidate relation, linearized formula
   and objective vectors must be bit-identical whichever engine filtered
   the base table. *)
let test_coeffs_parity () =
  let meal_query =
    "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
     COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
     SUM(P.protein)"
  in
  let coeffs mode =
    with_mode mode (fun () ->
        let db = Database.create () in
        Database.put db "recipes"
          (Pb_workload.Workload.recipes ~seed:7 ~n:24 ());
        Coeffs.make db (Pb_paql.Parser.parse meal_query))
  in
  let row = coeffs Mode.Row and col = coeffs Mode.Columnar in
  Alcotest.(check string) "candidates identical"
    (rel_repr row.Coeffs.candidates)
    (rel_repr col.Coeffs.candidates);
  Alcotest.(check int) "n" row.Coeffs.n col.Coeffs.n;
  Alcotest.(check int) "max_mult" row.Coeffs.max_mult col.Coeffs.max_mult;
  Alcotest.(check bool) "formula identical" true
    (row.Coeffs.formula = col.Coeffs.formula);
  Alcotest.(check bool) "objective identical" true
    (row.Coeffs.objective = col.Coeffs.objective)

let suite =
  [
    Alcotest.test_case "multiplicity compression" `Quick test_compression;
    Alcotest.test_case "distinct rows stay uncompressed" `Quick
      test_uncompressed;
    Alcotest.test_case "persist is mode-independent" `Quick
      test_persist_mode_independent;
    Alcotest.test_case "coeffs parity row vs columnar" `Quick
      test_coeffs_parity;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_roundtrip; prop_differential ]
