(* Tests for the Pb_par domain pool: primitive correctness, determinism
   of engine reports and SQL results across pool sizes, race
   cancellation, and exact metric/trace totals under concurrent
   hammering from 8 domains. *)

module Pool = Pb_par.Pool
module Metrics = Pb_obs.Metrics
module Trace = Pb_obs.Trace
module Engine = Pb_core.Engine
module Coeffs = Pb_core.Coeffs
module Relation = Pb_relation.Relation
module Parser = Pb_paql.Parser

let pool_sizes = [ 1; 2; 8 ]

(* Route code that reads the default pool (the SQL operators) through a
   specific size, restoring the PB_DOMAINS-derived default afterwards so
   later suites see the environment's configuration. *)
let with_default_size k f =
  Pool.set_default_size k;
  Fun.protect ~finally:(fun () -> Pool.set_default_size (Pool.env_size ())) f

(* ---- pool primitives ------------------------------------------------- *)

let test_map_reduce () =
  List.iter
    (fun size ->
      Pool.with_pool size (fun pool ->
          let n = 10_001 in
          let total =
            Pool.map_reduce pool ~n
              ~map:(fun ~lo ~hi ->
                let s = ref 0 in
                for i = lo to hi - 1 do
                  s := !s + i
                done;
                !s)
              ~reduce:( + ) 0
          in
          Alcotest.(check int)
            (Printf.sprintf "sum 0..%d at pool size %d" (n - 1) size)
            (n * (n - 1) / 2)
            total))
    pool_sizes

let test_parallel_for () =
  List.iter
    (fun size ->
      Pool.with_pool size (fun pool ->
          let n = 5000 in
          let out = Array.make n 0 in
          Pool.parallel_for pool n (fun i -> out.(i) <- (2 * i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "every slot written at pool size %d" size)
            true
            (Array.for_all Fun.id (Array.mapi (fun i v -> v = (2 * i) + 1) out))))
    pool_sizes

let test_map_chunks_order () =
  List.iter
    (fun size ->
      Pool.with_pool size (fun pool ->
          let n = 997 in
          let parts =
            Pool.map_chunks pool ~n (fun ~lo ~hi ->
                List.init (hi - lo) (fun k -> lo + k))
          in
          Alcotest.(check (list int))
            (Printf.sprintf "chunk concat = identity at pool size %d" size)
            (List.init n Fun.id) (List.concat parts)))
    pool_sizes

let test_map_chunks_exception () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.check_raises "chunk exception propagates"
        (Invalid_argument "boom") (fun () ->
          ignore
            (Pool.map_chunks pool ~n:100 (fun ~lo ~hi:_ ->
                 if lo = 0 then invalid_arg "boom" else 0))))

(* ---- race ------------------------------------------------------------ *)

let test_race_order_and_win () =
  List.iter
    (fun size ->
      Pool.with_pool size (fun pool ->
          let results =
            Pool.race pool
              [
                (fun _cancelled -> ("a", false));
                (fun _cancelled -> ("b", true));
                (fun _cancelled -> ("c", false));
              ]
          in
          Alcotest.(check (list string))
            (Printf.sprintf "values in input order at pool size %d" size)
            [ "a"; "b"; "c" ] results))
    pool_sizes

(* Every leg counts its own increments; the shared counter must equal
   their sum exactly once the race returns — concurrent increments lose
   nothing, and no leg keeps running (and incrementing) after the join. *)
let test_race_no_counter_drift () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "race_drift_total" in
  Pool.with_pool 8 (fun pool ->
      let winner _cancelled =
        for _ = 1 to 1_000 do
          Metrics.incr c
        done;
        (1_000, true)
      in
      let loser cancelled =
        let mine = ref 0 in
        let i = ref 0 in
        while !i < 50_000 && not (cancelled ()) do
          Metrics.incr c;
          incr mine;
          incr i
        done;
        (!mine, false)
      in
      let counts = Pool.race pool [ winner; loser; loser; loser ] in
      Alcotest.(check int)
        "counter equals the sum of per-leg increments"
        (List.fold_left ( + ) 0 counts)
        (Metrics.counter_value c))

(* ---- engine determinism ---------------------------------------------- *)

let recipes_db n =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes" (Pb_workload.Workload.recipes ~seed:7 ~n ());
  db

let meal_query =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
   SUM(P.protein)"

let report_fingerprint (r : Engine.result) =
  let pkg =
    match r.package with
    | None -> "none"
    | Some p ->
        String.concat ","
          (List.map string_of_int (Array.to_list (Pb_paql.Package.multiplicities p)))
  in
  Printf.sprintf "pkg=[%s] obj=%s proof=%s strategy=%s stats=[%s]" pkg
    (match r.objective with None -> "none" | Some v -> Printf.sprintf "%.9g" v)
    (Engine.proof_to_string r.proof)
    r.strategy_used
    (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) r.stats))

let check_strategy_deterministic name strategy ~ilp_max_nodes =
  let run size =
    let db = recipes_db 18 in
    let c = Coeffs.make db (Parser.parse meal_query) in
    Pool.with_pool size (fun pool ->
        with_default_size size (fun () ->
            let gov = Pb_util.Gov.create ~milp_nodes:ilp_max_nodes () in
            report_fingerprint (Engine.run_coeffs ~pool ~gov ~strategy db c)))
  in
  let reference = run 1 in
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "%s report identical at pool size %d" name size)
        reference (run size))
    pool_sizes

let test_brute_force_deterministic () =
  check_strategy_deterministic "brute-force+pruning"
    (Engine.Brute_force { use_pruning = true })
    ~ilp_max_nodes:200_000

let test_brute_force_nopruning_deterministic () =
  check_strategy_deterministic "brute-force"
    (Engine.Brute_force { use_pruning = false })
    ~ilp_max_nodes:200_000

(* Truncation boundary: the parallel replay must reproduce the exact
   sequential [examined] count and best-so-far when the budget bites. *)
let test_brute_force_budget_deterministic () =
  let db = recipes_db 18 in
  let c = Coeffs.make db (Parser.parse meal_query) in
  List.iter
    (fun budget ->
      let reference =
        Pool.with_pool 1 (fun pool ->
            Pb_core.Brute_force.search ~pool
              ~gov:(Pb_util.Gov.create ~bf_candidates:budget ())
              c)
      in
      List.iter
        (fun size ->
          Pool.with_pool size (fun pool ->
              let out =
                Pb_core.Brute_force.search ~pool
                  ~gov:(Pb_util.Gov.create ~bf_candidates:budget ())
                  c
              in
              let label what =
                Printf.sprintf "budget %d pool %d: %s" budget size what
              in
              Alcotest.(check int)
                (label "examined") reference.examined out.examined;
              Alcotest.(check bool)
                (label "complete") reference.complete out.complete;
              Alcotest.(check (option (float 1e-9)))
                (label "objective") reference.best_objective out.best_objective))
        pool_sizes)
    [ 1; 7; 64; 1000; 100_000 ]

(* Hybrid with a starved ILP budget exercises the race + merge path. *)
let test_hybrid_deterministic () =
  check_strategy_deterministic "hybrid" Engine.Hybrid ~ilp_max_nodes:25

let test_hybrid_full_budget_deterministic () =
  check_strategy_deterministic "hybrid(full budget)" Engine.Hybrid
    ~ilp_max_nodes:200_000

(* ---- SQL determinism ------------------------------------------------- *)

let sql_db () =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes" (Pb_workload.Workload.recipes ~seed:11 ~n:1500 ());
  db

let render rel =
  String.concat "\n"
    (List.map
       (fun row ->
         String.concat "|"
           (Array.to_list (Array.map Pb_relation.Value.to_string row)))
       (Relation.to_list rel))

let run_sql size sql =
  with_default_size size (fun () ->
      let db = sql_db () in
      match Pb_sql.Executor.execute_sql db sql with
      | Pb_sql.Executor.Rows rel -> render rel
      | _ -> Alcotest.fail "expected rows")

let check_sql_deterministic name sql =
  let reference = run_sql 1 sql in
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "%s identical at pool size %d" name size)
        reference (run_sql size sql))
    pool_sizes

let test_sql_scan_deterministic () =
  check_sql_deterministic "filtered scan"
    "SELECT id, name, calories, protein FROM recipes WHERE calories > 400 AND \
     protein > 15 AND gluten = 'free'"

let test_sql_join_deterministic () =
  check_sql_deterministic "hash join"
    "SELECT a.id, b.id, a.cuisine FROM recipes a, recipes b WHERE a.cuisine = \
     b.cuisine AND a.calories < 350 AND b.calories < 350 AND a.id < b.id"

let test_sql_projection_deterministic () =
  check_sql_deterministic "wide projection"
    "SELECT id, calories + protein * 4, cost * 2.0, upper(gluten) FROM \
     recipes WHERE id > 10"

(* ---- concurrency hammer (regression: plain mutable registry lost
   updates under concurrent increments) -------------------------------- *)

let hammer_domains = 8
let hammer_per_domain = 20_000

let test_metrics_hammer () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "hammer_total" in
  let h = Metrics.histogram ~registry ~buckets:[ 0.5; 1.5 ] "hammer_hist" in
  Pool.with_pool hammer_domains (fun pool ->
      Pool.parallel_for pool ~chunk_size:1 hammer_domains (fun d ->
          for i = 1 to hammer_per_domain do
            Metrics.incr c;
            if i land 1023 = 0 then
              Metrics.observe h (float_of_int (d land 1))
          done));
  Alcotest.(check int)
    "counter total exact"
    (hammer_domains * hammer_per_domain)
    (Metrics.counter_value c);
  Alcotest.(check int)
    "histogram count exact"
    (hammer_domains * (hammer_per_domain / 1024))
    (Metrics.histogram_count h)

let test_trace_add_count_hammer () =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      Pool.with_pool hammer_domains (fun pool ->
          Pool.parallel_for pool ~chunk_size:1 hammer_domains (fun _d ->
              Trace.with_span ~name:"hammer" (fun () ->
                  for _ = 1 to hammer_per_domain do
                    Trace.add_count "ticks" 1
                  done)));
      let total =
        List.fold_left
          (fun acc (sp : Trace.span) ->
            if sp.name = "hammer" then
              acc + Option.value (List.assoc_opt "ticks" sp.counters) ~default:0
            else acc)
          0 (Trace.spans ())
      in
      Alcotest.(check int)
        "span tick totals exact"
        (hammer_domains * hammer_per_domain)
        total)

let suite =
  [
    Alcotest.test_case "map_reduce sums deterministically" `Quick
      test_map_reduce;
    Alcotest.test_case "parallel_for covers every index" `Quick
      test_parallel_for;
    Alcotest.test_case "map_chunks preserves order" `Quick
      test_map_chunks_order;
    Alcotest.test_case "map_chunks propagates exceptions" `Quick
      test_map_chunks_exception;
    Alcotest.test_case "race returns values in input order" `Quick
      test_race_order_and_win;
    Alcotest.test_case "race cancellation leaves no counter drift" `Quick
      test_race_no_counter_drift;
    Alcotest.test_case "brute force identical at pool sizes 1/2/8" `Quick
      test_brute_force_deterministic;
    Alcotest.test_case "unpruned brute force identical across pools" `Quick
      test_brute_force_nopruning_deterministic;
    Alcotest.test_case "brute force budget boundary identical" `Quick
      test_brute_force_budget_deterministic;
    Alcotest.test_case "hybrid race identical at pool sizes 1/2/8" `Quick
      test_hybrid_deterministic;
    Alcotest.test_case "hybrid full budget identical across pools" `Quick
      test_hybrid_full_budget_deterministic;
    Alcotest.test_case "SQL scan results identical across pools" `Quick
      test_sql_scan_deterministic;
    Alcotest.test_case "SQL hash join results identical across pools" `Quick
      test_sql_join_deterministic;
    Alcotest.test_case "SQL projection identical across pools" `Quick
      test_sql_projection_deterministic;
    Alcotest.test_case "metrics survive an 8-domain hammer" `Quick
      test_metrics_hammer;
    Alcotest.test_case "trace counters survive an 8-domain hammer" `Quick
      test_trace_add_count_hammer;
  ]
