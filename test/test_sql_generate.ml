(* Tests for the §4 option (i) strategy: SQL-based candidate-package
   generation. Exactness is checked against brute force across constraint
   shapes; applicability limits are checked explicitly. *)

module Parser = Pb_paql.Parser
module Coeffs = Pb_core.Coeffs
module Sql_generate = Pb_core.Sql_generate
module Brute_force = Pb_core.Brute_force
module Engine = Pb_core.Engine
module Semantics = Pb_paql.Semantics
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema

let items_db n =
  let db = Pb_sql.Database.create () in
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "v"; ty = Value.T_int };
        { Schema.name = "w"; ty = Value.T_int };
      ]
  in
  let rows =
    List.init n (fun i ->
        [| Value.Int (i + 1); Value.Int (10 * (i + 1)); Value.Int (i + 1) |])
  in
  Pb_sql.Database.put db "items" (Relation.create schema rows);
  db

let check_matches_brute_force db src =
  let query = Parser.parse src in
  let c = Coeffs.make db query in
  let gen = Sql_generate.search db c in
  Alcotest.(check bool) ("applicable: " ^ src) true gen.Sql_generate.applicable;
  let bf = Brute_force.search c in
  (match (gen.Sql_generate.best, bf.Brute_force.best) with
  | Some _, Some _ | None, None -> ()
  | Some _, None -> Alcotest.fail ("gen found, bf did not: " ^ src)
  | None, Some _ -> Alcotest.fail ("bf found, gen did not: " ^ src));
  match (gen.Sql_generate.best_objective, bf.Brute_force.best_objective) with
  | Some a, Some b -> Alcotest.(check (float 1e-6)) ("objective: " ^ src) b a
  | None, None -> ()
  | _ -> Alcotest.fail ("objective presence differs: " ^ src)

let test_matches_bf_linear () =
  let db = items_db 10 in
  check_matches_brute_force db
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND SUM(p.w) \
     <= 12 MAXIMIZE SUM(p.v)"

let test_matches_bf_minimize () =
  let db = items_db 10 in
  check_matches_brute_force db
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 AND SUM(p.v) \
     >= 70 MINIMIZE SUM(p.w)"

let test_matches_bf_or_formula () =
  let db = items_db 9 in
  check_matches_brute_force db
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT (COUNT(*) = 2 AND SUM(p.v) \
     >= 100) OR (COUNT(*) = 3 AND SUM(p.w) <= 7) MAXIMIZE SUM(p.v)"

let test_matches_bf_extremum () =
  let db = items_db 9 in
  check_matches_brute_force db
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND MIN(p.w) \
     >= 2 AND MAX(p.w) <= 8 MAXIMIZE SUM(p.v)";
  (* witness side: MIN <= c *)
  check_matches_brute_force db
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 AND MIN(p.w) \
     <= 2 MAXIMIZE SUM(p.v)"

let test_matches_bf_avg () =
  let db = items_db 9 in
  check_matches_brute_force db
    "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) BETWEEN 2 AND 3 \
     AND AVG(p.w) <= 4 MAXIMIZE SUM(p.v)"

let test_matches_bf_infeasible () =
  let db = items_db 5 in
  let query =
    Parser.parse
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2 AND \
       SUM(p.w) >= 1000"
  in
  let c = Coeffs.make db query in
  let gen = Sql_generate.search db c in
  Alcotest.(check bool) "applicable" true gen.Sql_generate.applicable;
  Alcotest.(check bool) "no package" true (gen.Sql_generate.best = None)

let test_declines_wide_bounds () =
  let db = items_db 20 in
  let query =
    Parser.parse "SELECT PACKAGE(i) AS p FROM items i SUCH THAT SUM(p.w) >= 1"
  in
  let c = Coeffs.make db query in
  let gen = Sql_generate.search db c in
  Alcotest.(check bool) "not applicable" false gen.Sql_generate.applicable

let test_declines_repeat () =
  let db = items_db 6 in
  let query =
    Parser.parse
      "SELECT PACKAGE(i) AS p FROM items i REPEAT 1 SUCH THAT COUNT(*) = 2"
  in
  let c = Coeffs.make db query in
  let gen = Sql_generate.search db c in
  Alcotest.(check bool) "not applicable" false gen.Sql_generate.applicable

let test_declines_join_budget () =
  let db = items_db 10 in
  let query =
    Parser.parse "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3"
  in
  let c = Coeffs.make db query in
  let gen =
    Sql_generate.search
      ~params:{ Sql_generate.max_width = 4; max_join_rows = 10.0 }
      db c
  in
  Alcotest.(check bool) "not applicable" false gen.Sql_generate.applicable

let test_engine_strategy () =
  let db = items_db 8 in
  let query =
    Parser.parse
      "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 3 AND \
       SUM(p.w) <= 12 MAXIMIZE SUM(p.v)"
  in
  let r =
    Engine.run
      ~strategy:(Engine.Sql_generation Sql_generate.default_params)
      db query
  in
  Alcotest.(check bool) "proven optimal" true (r.Engine.proof = Engine.Optimal);
  (match r.Engine.package with
  | Some pkg ->
      Alcotest.(check bool) "oracle-valid" true (Semantics.is_valid ~db query pkg)
  | None -> Alcotest.fail "expected a package");
  Alcotest.(check string) "strategy name" "sql-generation" r.Engine.strategy_used

let test_temp_table_dropped () =
  let db = items_db 6 in
  let query =
    Parser.parse "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = 2"
  in
  let c = Coeffs.make db query in
  ignore (Sql_generate.search db c);
  Alcotest.(check bool) "dropped" true
    (Pb_sql.Database.find db "__pb_gen" = None)

let test_zero_cardinality_bound () =
  (* COUNT <= 1 includes the empty package, handled without a query. *)
  let db = items_db 4 in
  let query =
    Parser.parse "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) <= 1"
  in
  let c = Coeffs.make db query in
  let gen = Sql_generate.search db c in
  Alcotest.(check bool) "applicable" true gen.Sql_generate.applicable;
  Alcotest.(check bool) "found something" true (gen.Sql_generate.best <> None)

let test_randomized_agreement () =
  let rng = Pb_util.Prng.create 404 in
  for _trial = 1 to 15 do
    let n = Pb_util.Prng.int_in rng 4 9 in
    let db = items_db n in
    let count = Pb_util.Prng.int_in rng 1 3 in
    let budget = Pb_util.Prng.int_in rng 3 20 in
    check_matches_brute_force db
      (Printf.sprintf
         "SELECT PACKAGE(i) AS p FROM items i SUCH THAT COUNT(*) = %d AND \
          SUM(p.w) <= %d MAXIMIZE SUM(p.v)"
         count budget)
  done

let suite =
  [
    Alcotest.test_case "matches bf: linear" `Quick test_matches_bf_linear;
    Alcotest.test_case "matches bf: minimize" `Quick test_matches_bf_minimize;
    Alcotest.test_case "matches bf: or formula" `Quick test_matches_bf_or_formula;
    Alcotest.test_case "matches bf: min/max" `Quick test_matches_bf_extremum;
    Alcotest.test_case "matches bf: avg" `Quick test_matches_bf_avg;
    Alcotest.test_case "matches bf: infeasible" `Quick test_matches_bf_infeasible;
    Alcotest.test_case "declines wide bounds" `Quick test_declines_wide_bounds;
    Alcotest.test_case "declines repeat" `Quick test_declines_repeat;
    Alcotest.test_case "declines join budget" `Quick test_declines_join_budget;
    Alcotest.test_case "engine strategy" `Quick test_engine_strategy;
    Alcotest.test_case "temp table dropped" `Quick test_temp_table_dropped;
    Alcotest.test_case "zero cardinality bound" `Quick test_zero_cardinality_bound;
    Alcotest.test_case "randomized agreement with bf" `Quick
      test_randomized_agreement;
  ]
