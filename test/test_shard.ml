(* Tests for the shared-nothing shard layer: hash stability (golden
   values — the partitioning contract must never drift), partition
   completeness, partial-aggregate merge planning checked differentially
   against single-node execution, SketchRefine prepartitioning, and an
   in-process router-vs-single-node differential over real sockets. *)

module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Database = Pb_sql.Database
module Parser = Pb_sql.Parser
module Executor = Pb_sql.Executor
module Ast = Pb_sql.Ast
module Hash = Pb_shard.Hash
module Merge = Pb_shard.Merge
module Router = Pb_shard.Router
module Server = Pb_net.Server
module Gov = Pb_util.Gov

let exec db sql =
  List.iter (fun st -> ignore (Executor.execute db st)) (Parser.parse_script sql)

let parse_select sql =
  match Parser.parse_script sql with
  | [ Ast.Select_stmt q ] -> q
  | _ -> Alcotest.failf "expected a single SELECT: %s" sql

(* ---- hash stability --------------------------------------------------- *)

(* Golden values: if any of these change, existing sharded deployments
   would route rows to the wrong shard. Never "fix" this test by
   updating the constants — fix the hash. *)
let test_hash_golden () =
  let check name row expected =
    Alcotest.(check int64) name expected (Hash.hash_row row)
  in
  check "empty row" [||] 0xcbf29ce484222325L;
  check "null" [| Value.Null |] 0xaf64034c86022ed1L;
  check "int 42" [| Value.Int 42 |] 0x40e3c919c8e5fac6L;
  check "float 1.5" [| Value.Float 1.5 |] 0x1f1b908c0f151958L;
  check "string" [| Value.Str "rice" |] 0x7cb0d99d9510ee95L;
  check "mixed"
    [| Value.Int 7; Value.Str "a"; Value.Bool true; Value.Null |]
    0xd066e2571050396dL

let test_hash_discriminates () =
  (* concatenation attacks and type confusion must not collide *)
  let h row = Hash.hash_row row in
  Alcotest.(check bool) "ab|c vs a|bc" false
    (h [| Value.Str "ab"; Value.Str "c" |] = h [| Value.Str "a"; Value.Str "bc" |]);
  Alcotest.(check bool) "int 1 vs str 1" false
    (h [| Value.Int 1 |] = h [| Value.Str "1" |]);
  Alcotest.(check bool) "bool vs int" false
    (h [| Value.Bool true |] = h [| Value.Int 1 |]);
  Alcotest.(check bool) "null vs empty string" false
    (h [| Value.Null |] = h [| Value.Str "" |])

let test_partition_complete () =
  let rel = Pb_workload.Workload.recipes ~seed:3 ~n:97 () in
  let shards = 4 in
  let parts =
    List.init shards (fun shard -> Hash.filter_shard ~shards ~shard rel)
  in
  let total = List.fold_left (fun a p -> a + Relation.cardinality p) 0 parts in
  Alcotest.(check int) "cardinalities sum" (Relation.cardinality rel) total;
  List.iter
    (fun p ->
      Alcotest.(check bool) "every shard owns something (n=97, shards=4)" true
        (Relation.cardinality p > 0))
    parts;
  let sort rows = List.sort compare rows in
  Alcotest.(check bool) "union is the original multiset" true
    (sort (List.concat_map Relation.to_list parts) = sort (Relation.to_list rel))

let test_hash_survives_data_codec () =
  (* the PaQL path recomputes shard residency on rows pulled through the
     data-mode codec: the round trip must not change a single hash *)
  let rel = Pb_workload.Workload.recipes ~seed:5 ~n:23 () in
  match Pb_net.Wire_data.decode_result (Pb_net.Wire_data.encode_result (Executor.Rows rel)) with
  | Ok (Executor.Rows rel') ->
      Array.iteri
        (fun i row ->
          Alcotest.(check int64)
            (Printf.sprintf "row %d hash" i)
            (Hash.hash_row row)
            (Hash.hash_row (Relation.row rel' i)))
        (Relation.rows rel)
  | _ -> Alcotest.fail "codec round trip failed"

(* ---- merge planning, differentially ----------------------------------- *)

(* Float literals are exact binary fractions on purpose: the merged SUM
   re-associates addition, which is only byte-identical when every
   partial sum is exact. *)
let seed_sql =
  "CREATE TABLE t (g TEXT, v INT, f FLOAT);\n\
   INSERT INTO t VALUES\n\
   ('a', 1, 1.5), ('a', 2, 2.5), ('b', 10, 0.25), ('b', NULL, NULL),\n\
   ('c', 7, 1.0), (NULL, 3, 0.5), ('a', 1, 1.5), ('d', NULL, NULL),\n\
   ('d', NULL, NULL), ('b', 4, 8.0), ('c', -2, -1.0), ('e', 100, 3.25),\n\
   ('a', 5, 0.125), (NULL, NULL, NULL)"

let shards = 3

let make_single () =
  let db = Database.create () in
  exec db seed_sql;
  db

let make_shards () =
  let single = make_single () in
  let full = Database.find_exn single "t" in
  List.init shards (fun shard ->
      let db = Database.create () in
      Database.put db "t" (Hash.filter_shard ~shards ~shard full);
      db)

let run_to_table db q =
  match Executor.execute db (Ast.Select_stmt q) with
  | Executor.Rows rel -> Relation.to_table rel
  | _ -> Alcotest.fail "expected rows"

let check_merged sql =
  let q = parse_select sql in
  match Merge.plan ~table:"t" q with
  | None -> Alcotest.failf "expected a merge plan for: %s" sql
  | Some plan ->
      let single = make_single () in
      let expected = run_to_table single q in
      let partials =
        List.map
          (fun db ->
            match Executor.execute db (Ast.Select_stmt plan.Merge.partial) with
            | Executor.Rows rel -> rel
            | _ -> Alcotest.fail "partial must return rows")
          (make_shards ())
      in
      let scratch = Database.create () in
      (match partials with
      | first :: _ ->
          Database.put scratch plan.Merge.scratch
            (Relation.create (Relation.schema first)
               (List.concat_map Relation.to_list partials))
      | [] -> assert false);
      let merged = run_to_table scratch plan.Merge.final in
      Alcotest.(check string) sql expected merged

let test_merge_differential () =
  List.iter check_merged
    [
      "SELECT COUNT(*) FROM t";
      "SELECT COUNT(v), SUM(v), MIN(v), MAX(v) FROM t";
      "SELECT g, COUNT(*) AS n, SUM(v) AS sv FROM t GROUP BY g ORDER BY g";
      "SELECT g, SUM(f) FROM t WHERE v IS NOT NULL GROUP BY g ORDER BY g";
      "SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) >= 2 ORDER BY g";
      "SELECT g, MAX(v) FROM t GROUP BY g ORDER BY MAX(v) DESC, g LIMIT 3";
      "SELECT SUM(v) + COUNT(*) FROM t";
      "SELECT COUNT(*) FROM t WHERE g = 'a' OR v > 5";
      "SELECT MIN(f), MAX(f) FROM t WHERE g IS NOT NULL";
    ]

let test_merge_refusals () =
  List.iter
    (fun sql ->
      let q = parse_select sql in
      match Merge.plan ~table:"t" q with
      | None -> ()
      | Some _ -> Alcotest.failf "must refuse to merge: %s" sql)
    [
      (* AVG of partial AVGs is wrong; reconstructing it re-associates *)
      "SELECT AVG(v) FROM t";
      (* DISTINCT across shards needs a global set *)
      "SELECT DISTINCT g FROM t";
      (* bare column in a grouped query = group representative: depends
         on physical row order, unreproducible from partials *)
      "SELECT g, v FROM t GROUP BY g";
      (* no aggregation at all: nothing to merge *)
      "SELECT v FROM t";
      (* joins need rows, not partials *)
      "SELECT COUNT(*) FROM t a, t b";
      (* subqueries may reference other shards *)
      "SELECT COUNT(*) FROM t WHERE v IN (SELECT v FROM t)";
      "SELECT * FROM t";
    ]

(* ---- SketchRefine prepartition ---------------------------------------- *)

let paql_line =
  "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 2 AND SUM(P.calories) <= 2600 MAXIMIZE SUM(P.protein)"

let test_prepartition_sound () =
  let db = Database.create () in
  Database.put db "recipes" (Pb_workload.Workload.recipes ~seed:11 ~n:40 ());
  let query = Pb_paql.Parser.parse paql_line in
  let coeffs = Pb_core.Coeffs.make db query in
  let rows = Relation.rows coeffs.Pb_core.Coeffs.candidates in
  let buckets = Array.make 3 [] in
  Array.iteri
    (fun i row ->
      let s = Hash.shard_of_row ~shards:3 row in
      buckets.(s) <- i :: buckets.(s))
    rows;
  let groups =
    Array.to_list buckets
    |> List.filter_map (fun b ->
           match List.rev b with [] -> None | l -> Some (Array.of_list l))
    |> Array.of_list
  in
  let params =
    { Pb_core.Sketch_refine.default_params with prepartition = Some groups }
  in
  let result =
    Pb_core.Engine.run ~strategy:(Pb_core.Engine.Sketch_refine params) db query
  in
  Alcotest.(check string) "strategy" "sketch-refine"
    result.Pb_core.Engine.strategy_used;
  match result.Pb_core.Engine.package with
  | None -> Alcotest.fail "prepartitioned sketch-refine found nothing"
  | Some pkg ->
      Alcotest.(check bool) "package passes Coeffs.check" true
        (Pb_core.Coeffs.check coeffs pkg)

let test_prepartition_tolerates_garbage () =
  (* duplicate and out-of-range indices are dropped, uncovered indices
     form an extra group — a hostile prepartition must not crash or
     produce an invalid package *)
  let db = Database.create () in
  Database.put db "recipes" (Pb_workload.Workload.recipes ~seed:11 ~n:30 ());
  let query = Pb_paql.Parser.parse paql_line in
  let params =
    {
      Pb_core.Sketch_refine.default_params with
      prepartition = Some [| [| 0; 0; 1; 9999 |]; [| 2; 3; 2 |] |];
    }
  in
  let result =
    Pb_core.Engine.run ~strategy:(Pb_core.Engine.Sketch_refine params) db query
  in
  let coeffs = Pb_core.Coeffs.make db query in
  match result.Pb_core.Engine.package with
  | None -> () (* finding nothing is sound *)
  | Some pkg ->
      Alcotest.(check bool) "package passes Coeffs.check" true
        (Pb_core.Coeffs.check coeffs pkg)

(* ---- router vs single node over real sockets -------------------------- *)

let server_config = { Server.default_config with port = 0; poll_interval = 0.02 }

(* Replay the same inputs through a Repl on the full database and
   through a Router fronting two in-process shard servers; every
   reaction must match byte-for-byte. Covers merged aggregates, the
   scan-pull fallback (join with ORDER BY), routed INSERT, broadcast
   UPDATE/DELETE, router-local tables, and \ commands. *)
let test_router_matches_single_node () =
  let full = Database.create () in
  Database.put full "recipes" (Pb_workload.Workload.recipes ~seed:11 ~n:60 ());
  let shard_db i =
    let db = Database.create () in
    Database.put db "recipes"
      (Hash.filter_shard ~shards:2 ~shard:i
         (Database.find_exn full "recipes"));
    db
  in
  Server.with_server ~config:server_config (shard_db 0) (fun s0 ->
      Server.with_server ~config:server_config (shard_db 1) (fun s1 ->
          let router =
            Router.create ~connect_timeout:5.0
              ~shards:
                [| ("127.0.0.1", Server.port s0); ("127.0.0.1", Server.port s1) |]
              (Database.create ())
          in
          Fun.protect
            ~finally:(fun () -> Router.close router)
            (fun () ->
              let repl = Pb_shell.Repl.create full in
              let inputs =
                [
                  "\\tables";
                  "SELECT COUNT(*), SUM(calories), MIN(rating), MAX(cost) \
                   FROM recipes";
                  "SELECT cuisine, COUNT(*) AS n, MAX(protein) FROM recipes \
                   WHERE calories > 300 GROUP BY cuisine ORDER BY cuisine";
                  (* join: exercises the scan-pull fallback *)
                  "SELECT a.id, b.id FROM recipes a, recipes b WHERE a.id < \
                   b.id AND a.calories + b.calories < 500 ORDER BY a.id, b.id";
                  (* router-local table lifecycle *)
                  "CREATE TABLE note (k TEXT, n INT)";
                  "INSERT INTO note VALUES ('x', 1), ('y', 2)";
                  "SELECT * FROM note ORDER BY k";
                  (* DML on the sharded table: routed INSERT, broadcast
                     UPDATE/DELETE, then re-aggregate *)
                  "INSERT INTO recipes VALUES (900, 'added #900', 'thai', \
                   'free', 512, 30, 10, 40, 5, 9.5, 4.5, 25), (901, 'added \
                   #901', 'greek', 'full', 610, 22, 20, 50, 9, 11.25, 3.5, 40)";
                  "SELECT COUNT(*), SUM(calories) FROM recipes";
                  "UPDATE recipes SET rating = 5 WHERE id >= 900";
                  "SELECT id, rating FROM recipes WHERE id >= 900 ORDER BY id";
                  "DELETE FROM recipes WHERE id = 901";
                  "SELECT COUNT(*) FROM recipes";
                  "DROP TABLE note";
                  "\\schema recipes";
                  "sel ect nonsense";
                ]
              in
              let gov () = Gov.create () in
              List.iter
                (fun line ->
                  let expected = Pb_shell.Repl.handle repl line in
                  let got = Router.handle router ~gov:(gov ()) line in
                  Alcotest.(check string) line expected.Pb_shell.Repl.output
                    got.Pb_shell.Repl.output)
                inputs;
              (* PaQL: sketch-refine is anytime — its package may be
                 suboptimal, so assert soundness, not equality: the
                 router's objective cannot exceed the single-node
                 optimum (MAXIMIZE), and the strategy must be the
                 shard-grouped sketch-refine *)
              let contains hay needle =
                let n = String.length needle and h = String.length hay in
                let rec go i =
                  i + n <= h && (String.sub hay i n = needle || go (i + 1))
                in
                go 0
              in
              let objective_of out =
                out |> String.split_on_char '\n'
                |> List.find_map (fun l ->
                       match String.split_on_char ' ' l with
                       | [ "objective:"; v ] -> float_of_string_opt v
                       | _ -> None)
              in
              let expected = Pb_shell.Repl.handle repl paql_line in
              let got = Router.handle router ~gov:(gov ()) paql_line in
              (match
                 ( objective_of expected.Pb_shell.Repl.output,
                   objective_of got.Pb_shell.Repl.output )
               with
              | Some opt, Some routed ->
                  Alcotest.(check bool)
                    (Printf.sprintf "router objective %g bounded by optimum %g"
                       routed opt)
                    true
                    (routed <= opt +. 1e-9)
              | _ -> Alcotest.fail "both sides must report an objective");
              Alcotest.(check bool) "router found a package" true
                (contains got.Pb_shell.Repl.output "-- package of");
              Alcotest.(check bool) "router reports sketch-refine" true
                (contains got.Pb_shell.Repl.output "sketch-refine");
              (* aggregated health over the query wire *)
              let h = Router.health_json router in
              Alcotest.(check bool) "health ok" true
                (String.length h >= 16 && String.sub h 0 16 = "{\"status\":\"ok\",\"")))
  )

let suite =
  [
    Alcotest.test_case "hash golden values" `Quick test_hash_golden;
    Alcotest.test_case "hash discriminates types and boundaries" `Quick
      test_hash_discriminates;
    Alcotest.test_case "filter_shard partitions completely" `Quick
      test_partition_complete;
    Alcotest.test_case "hash survives the data-mode codec" `Quick
      test_hash_survives_data_codec;
    Alcotest.test_case "merge plan equals single node" `Quick
      test_merge_differential;
    Alcotest.test_case "merge planner refuses the unmergeable" `Quick
      test_merge_refusals;
    Alcotest.test_case "prepartitioned sketch-refine is sound" `Quick
      test_prepartition_sound;
    Alcotest.test_case "prepartition tolerates hostile groups" `Quick
      test_prepartition_tolerates_garbage;
    Alcotest.test_case "router matches single node over sockets" `Quick
      test_router_matches_single_node;
  ]
