(* Property-based tests (qcheck): solver correctness against enumeration,
   pruning soundness, cross-strategy agreement, LIKE vs a reference
   matcher, and PaQL print/parse round-trips on randomly generated
   queries. *)

module Gen = QCheck.Gen
module Model = Pb_lp.Model
module Simplex = Pb_lp.Simplex
module Milp = Pb_lp.Milp
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Parser = Pb_paql.Parser
module Semantics = Pb_paql.Semantics
module Coeffs = Pb_core.Coeffs
module Pruning = Pb_core.Pruning

(* ---- LP: constructed-feasible instances ----------------------------- *)

type lp_instance = {
  nvars : int;
  upper : float array;
  point : float array;  (* feasible by construction *)
  rows : (float array * Model.sense * float) list;
  cost : float array;
}

let lp_gen : lp_instance Gen.t =
  let open Gen in
  let* nvars = int_range 1 6 in
  let* upper = array_repeat nvars (float_range 1.0 10.0) in
  let* point =
    array_repeat nvars (float_range 0.0 1.0) >|= Array.mapi (fun i f -> f *. upper.(i))
  in
  let* nrows = int_range 1 5 in
  let* rows =
    list_repeat nrows
      (let* coefs = array_repeat nvars (float_range (-5.0) 5.0) in
       let lhs =
         Array.fold_left ( +. ) 0.0 (Array.mapi (fun i c -> c *. point.(i)) coefs)
       in
       let* slack = float_range 0.0 5.0 in
       let* sense = oneofl [ Model.Le; Model.Ge ] in
       match sense with
       | Model.Le -> return (coefs, Model.Le, lhs +. slack)
       | Model.Ge -> return (coefs, Model.Ge, lhs -. slack)
       | Model.Eq -> return (coefs, Model.Eq, lhs))
  in
  let* cost = array_repeat nvars (float_range (-10.0) 10.0) in
  return { nvars; upper; point; rows; cost }

let build_lp inst =
  let m = Model.create () in
  let vars =
    Array.init inst.nvars (fun i ->
        Model.add_var m ~upper:inst.upper.(i) (Printf.sprintf "x%d" i))
  in
  List.iter
    (fun (coefs, sense, rhs) ->
      Model.add_constr m
        (Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs))
        sense rhs)
    inst.rows;
  Model.set_objective m
    (Model.Maximize (Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) inst.cost)));
  m

let prop_simplex_feasible_and_dominant =
  QCheck.Test.make ~count:200 ~name:"simplex: optimal, feasible, dominates witness"
    (QCheck.make lp_gen) (fun inst ->
      let m = build_lp inst in
      let s = Simplex.solve m in
      match s.Simplex.status with
      | Simplex.Optimal ->
          Model.check_feasible ~eps:1e-5 m s.Simplex.x
          && s.Simplex.objective
             >= Model.objective_value m inst.point -. 1e-5
      | Simplex.Unbounded -> false (* all variables are boxed *)
      | Simplex.Infeasible -> false (* witness point exists *)
      | Simplex.Iteration_limit -> false)

(* ---- MILP vs exhaustive enumeration --------------------------------- *)

type milp_instance = {
  n : int;
  weights : int array;
  values : int array;
  budget : int;
  exact_count : int option;  (* optional COUNT = c constraint *)
}

let milp_gen : milp_instance Gen.t =
  let open Gen in
  let* n = int_range 1 8 in
  let* weights = array_repeat n (int_range 1 9) in
  let* values = array_repeat n (int_range 0 9) in
  let* budget = int_range 1 30 in
  let* exact_count = opt (int_range 1 4) in
  return { n; weights; values; budget; exact_count }

let prop_milp_matches_enumeration =
  QCheck.Test.make ~count:150 ~name:"milp: equals exhaustive optimum"
    (QCheck.make milp_gen) (fun inst ->
      let m = Model.create () in
      let vars =
        Array.init inst.n (fun i ->
            Model.add_var m ~integer:true ~upper:1.0 (Printf.sprintf "v%d" i))
      in
      Model.add_constr m
        (Array.to_list
           (Array.mapi (fun i v -> (float_of_int inst.weights.(i), v)) vars))
        Model.Le (float_of_int inst.budget);
      (match inst.exact_count with
      | Some c ->
          Model.add_constr m
            (Array.to_list (Array.map (fun v -> (1.0, v)) vars))
            Model.Eq (float_of_int c)
      | None -> ());
      Model.set_objective m
        (Model.Maximize
           (Array.to_list
              (Array.mapi (fun i v -> (float_of_int inst.values.(i), v)) vars)));
      let s = Milp.solve m in
      (* enumeration reference *)
      let best = ref None in
      for mask = 0 to (1 lsl inst.n) - 1 do
        let w = ref 0 and v = ref 0 and cnt = ref 0 in
        for i = 0 to inst.n - 1 do
          if mask land (1 lsl i) <> 0 then begin
            w := !w + inst.weights.(i);
            v := !v + inst.values.(i);
            incr cnt
          end
        done;
        let count_ok =
          match inst.exact_count with Some c -> !cnt = c | None -> true
        in
        if !w <= inst.budget && count_ok then
          match !best with
          | Some b when b >= !v -> ()
          | _ -> best := Some !v
      done;
      match (!best, s.Milp.status) with
      | None, Milp.Infeasible -> true
      | Some b, Milp.Optimal -> Float.abs (s.Milp.objective -. float_of_int b) < 1e-6
      | _ -> false)

(* ---- package-level properties over random tables -------------------- *)

type table_instance = {
  rows : (int * int) list;  (* (v, w) per tuple *)
  lo : int;
  hi : int;
  count_max : int;
}

let table_gen : table_instance Gen.t =
  let open Gen in
  let* n = int_range 1 9 in
  let* rows = list_repeat n (pair (int_range 0 20) (int_range 1 9)) in
  let* lo = int_range 0 25 in
  let* span = int_range 0 20 in
  let* count_max = int_range 1 5 in
  return { rows; lo; hi = lo + span; count_max }

let db_of_table inst =
  let schema =
    Schema.make
      [
        { Schema.name = "v"; ty = Value.T_int };
        { Schema.name = "w"; ty = Value.T_int };
      ]
  in
  let rows =
    List.map (fun (v, w) -> [| Value.Int v; Value.Int w |]) inst.rows
  in
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "t" (Relation.create schema rows);
  db

let query_of_table inst =
  Parser.parse
    (Printf.sprintf
       "SELECT PACKAGE(t) AS p FROM t SUCH THAT SUM(p.w) BETWEEN %d AND %d \
        AND COUNT(*) <= %d MAXIMIZE SUM(p.v)"
       inst.lo inst.hi inst.count_max)

let prop_pruning_sound =
  QCheck.Test.make ~count:200 ~name:"pruning: no valid package outside bounds"
    (QCheck.make table_gen) (fun inst ->
      let db = db_of_table inst in
      let query = query_of_table inst in
      let c = Coeffs.make db query in
      let b = Pruning.cardinality_bounds c in
      let n = List.length inst.rows in
      let ok = ref true in
      for mask = 0 to (1 lsl n) - 1 do
        let mult = Array.init n (fun i -> (mask lsr i) land 1) in
        if Coeffs.check_mult c mult then begin
          let card = Array.fold_left ( + ) 0 mult in
          if card < b.Pruning.lo || card > b.Pruning.hi then ok := false
        end
      done;
      !ok)

let prop_compiled_check_matches_oracle =
  QCheck.Test.make ~count:100 ~name:"compiled check = semantic oracle"
    (QCheck.make table_gen) (fun inst ->
      let db = db_of_table inst in
      let query = query_of_table inst in
      let c = Coeffs.make db query in
      let n = List.length inst.rows in
      let ok = ref true in
      for mask = 0 to (1 lsl n) - 1 do
        let mult = Array.init n (fun i -> (mask lsr i) land 1) in
        let pkg = Coeffs.package_of_mult c mult in
        if Coeffs.check_mult c mult <> Semantics.is_valid ~db query pkg then
          ok := false
      done;
      !ok)

let prop_ilp_equals_brute_force =
  QCheck.Test.make ~count:100 ~name:"ilp optimum = brute-force optimum"
    (QCheck.make table_gen) (fun inst ->
      let db = db_of_table inst in
      let query = query_of_table inst in
      let bf =
        Pb_core.Engine.run
          ~strategy:(Pb_core.Engine.Brute_force { use_pruning = true })
          db query
      in
      let ilp = Pb_core.Engine.run ~strategy:Pb_core.Engine.Ilp db query in
      match (bf.Pb_core.Engine.objective, ilp.Pb_core.Engine.objective) with
      | Some a, Some b -> Float.abs (a -. b) < 1e-6
      | None, None ->
          bf.Pb_core.Engine.package = None && ilp.Pb_core.Engine.package = None
      | _ -> false)

let prop_local_search_valid =
  QCheck.Test.make ~count:60 ~name:"local search answers are oracle-valid"
    (QCheck.make table_gen) (fun inst ->
      let db = db_of_table inst in
      let query = query_of_table inst in
      let r =
        Pb_core.Engine.run
          ~strategy:
            (Pb_core.Engine.Local_search Pb_core.Local_search.default_params)
          db query
      in
      match r.Pb_core.Engine.package with
      | Some pkg -> Semantics.is_valid ~db query pkg
      | None -> true)

(* ---- LIKE vs reference ---------------------------------------------- *)

let rec like_reference pattern s pi si =
  let np = String.length pattern and ns = String.length s in
  if pi = np then si = ns
  else
    match pattern.[pi] with
    | '%' ->
        let rec try_consume k =
          k <= ns
          && (like_reference pattern s (pi + 1) k || try_consume (k + 1))
        in
        try_consume si
    | '_' -> si < ns && like_reference pattern s (pi + 1) (si + 1)
    | c -> si < ns && s.[si] = c && like_reference pattern s (pi + 1) (si + 1)

let like_input_gen =
  let open Gen in
  let pat_char = oneofl [ 'a'; 'b'; '%'; '_' ] in
  let str_char = oneofl [ 'a'; 'b'; 'c' ] in
  pair
    (string_size ~gen:pat_char (int_range 0 8))
    (string_size ~gen:str_char (int_range 0 10))

let prop_like_matches_reference =
  QCheck.Test.make ~count:500 ~name:"LIKE = backtracking reference"
    (QCheck.make like_input_gen) (fun (pattern, s) ->
      Pb_sql.Executor.like_match ~pattern s = like_reference pattern s 0 0)

(* ---- PaQL round-trip on random queries ------------------------------- *)

let paql_gen : string Gen.t =
  let open Gen in
  let agg = oneofl [ "COUNT(*)"; "SUM(p.a)"; "SUM(p.b)"; "AVG(p.a)"; "MIN(p.b)"; "MAX(p.a)" ] in
  let cmp = oneofl [ "<="; ">="; "="; "<"; ">" ] in
  let atom =
    let* a = agg in
    let* c = cmp in
    let* k = int_range 0 100 in
    return (Printf.sprintf "%s %s %d" a c k)
  in
  let clause =
    let* n = int_range 1 3 in
    let* atoms = list_repeat n atom in
    let* connective = oneofl [ " AND "; " OR " ] in
    return (String.concat connective atoms)
  in
  let* where = opt (oneofl [ "t.a > 3"; "t.b <= 5 AND t.a >= 1"; "t.a BETWEEN 1 AND 9" ]) in
  let* such_that = opt clause in
  let* repeat = opt (int_range 0 3) in
  let* objective = opt (oneofl [ "MAXIMIZE SUM(p.a)"; "MINIMIZE SUM(p.b)" ]) in
  let parts =
    [ "SELECT PACKAGE(t) AS p FROM tbl t" ]
    @ (match repeat with Some k -> [ Printf.sprintf "REPEAT %d" k ] | None -> [])
    @ (match where with Some w -> [ "WHERE " ^ w ] | None -> [])
    @ (match such_that with Some s -> [ "SUCH THAT " ^ s ] | None -> [])
    @ match objective with Some o -> [ o ] | None -> []
  in
  return (String.concat " " parts)

let prop_paql_roundtrip =
  QCheck.Test.make ~count:300 ~name:"PaQL print/parse fixpoint"
    (QCheck.make paql_gen) (fun src ->
      let q1 = Parser.parse src in
      let printed = Pb_paql.Ast.to_string q1 in
      let q2 = Parser.parse printed in
      Pb_paql.Ast.to_string q2 = printed)

(* ---- binomial recurrence --------------------------------------------- *)

let prop_binomial_recurrence =
  QCheck.Test.make ~count:200 ~name:"log_binomial Pascal recurrence"
    QCheck.(pair (QCheck.make (Gen.int_range 2 60)) (QCheck.make (Gen.int_range 1 59)))
    (fun (n, k) ->
      QCheck.assume (k < n);
      let lhs = Pb_util.Stats.log_binomial n k in
      let rhs =
        Pb_util.Stats.log_sum_exp
          [
            Pb_util.Stats.log_binomial (n - 1) (k - 1);
            Pb_util.Stats.log_binomial (n - 1) k;
          ]
      in
      Float.abs (lhs -. rhs) < 1e-9)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_simplex_feasible_and_dominant;
      prop_milp_matches_enumeration;
      prop_pruning_sound;
      prop_compiled_check_matches_oracle;
      prop_ilp_equals_brute_force;
      prop_local_search_valid;
      prop_like_matches_reference;
      prop_paql_roundtrip;
      prop_binomial_recurrence;
    ]
