examples/courses.ml: Pb_core Pb_paql Pb_relation Pb_sql Pb_workload Printf
