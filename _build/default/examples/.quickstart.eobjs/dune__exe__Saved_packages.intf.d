examples/saved_packages.mli:
