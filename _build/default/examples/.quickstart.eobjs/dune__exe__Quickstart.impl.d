examples/quickstart.ml: List Pb_core Pb_explore Pb_paql Pb_sql Pb_workload Printf
