examples/mealplanner.mli:
