examples/portfolio.ml: List Option Pb_core Pb_explore Pb_paql Pb_relation Pb_sql Pb_workload Printf
