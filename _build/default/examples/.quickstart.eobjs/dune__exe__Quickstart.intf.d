examples/quickstart.mli:
