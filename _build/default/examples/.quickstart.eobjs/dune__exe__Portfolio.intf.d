examples/portfolio.mli:
