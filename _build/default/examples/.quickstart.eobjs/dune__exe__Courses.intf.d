examples/courses.mli:
