examples/vacation.ml: Array Float List Pb_core Pb_paql Pb_relation Pb_sql Pb_workload Printf String
