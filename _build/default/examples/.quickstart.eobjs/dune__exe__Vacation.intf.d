examples/vacation.mli:
