type column = { name : string; ty : Value.ty }

type t = { cols : column array }

let normalize name = String.lowercase_ascii name

let make cols =
  let cols = List.map (fun c -> { c with name = normalize c.name }) cols in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name)
      else Hashtbl.add seen c.name ())
    cols;
  { cols = Array.of_list cols }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let base_name name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let index_of t name =
  let name = normalize name in
  let exact = ref None and suffix = ref [] in
  Array.iteri
    (fun i c ->
      if c.name = name then exact := Some i
      else if base_name c.name = name then suffix := i :: !suffix)
    t.cols;
  match (!exact, !suffix) with
  | Some i, _ -> Some i
  | None, [ i ] -> Some i
  | None, _ -> None

let index_of_exn t name =
  match index_of t name with
  | Some i -> i
  | None ->
      failwith
        (Printf.sprintf "unknown or ambiguous column %S (have: %s)" name
           (String.concat ", " (Array.to_list (Array.map (fun c -> c.name) t.cols))))

let column_ty t name =
  match index_of t name with Some i -> Some t.cols.(i).ty | None -> None

let names t = Array.to_list (Array.map (fun c -> c.name) t.cols)

let qualify alias t =
  let alias = normalize alias in
  {
    cols =
      Array.map
        (fun c -> { c with name = alias ^ "." ^ base_name c.name })
        t.cols;
  }

let concat a b = make (columns a @ columns b)

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.cols b.cols

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (List.map
          (fun c -> c.name ^ ":" ^ Value.ty_to_string c.ty)
          (columns t)))
