lib/relation/value.ml: Bool Float Format Int Printf String
