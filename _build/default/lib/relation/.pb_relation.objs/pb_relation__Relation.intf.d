lib/relation/relation.mli: Format Schema Value
