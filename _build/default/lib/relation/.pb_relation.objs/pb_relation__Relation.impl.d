lib/relation/relation.ml: Array Format List Pb_util Printf Schema Value
