type t = { schema : Schema.t; store : Value.t array array }

let validate schema row =
  if Array.length row <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Relation: row arity %d does not match schema arity %d"
         (Array.length row) (Schema.arity schema))

let create schema rows =
  List.iter (validate schema) rows;
  { schema; store = Array.of_list rows }

let empty schema = { schema; store = [||] }
let schema t = t.schema
let cardinality t = Array.length t.store
let rows t = t.store
let row t i = t.store.(i)
let to_list t = Array.to_list t.store

let append t new_rows =
  List.iter (validate t.schema) new_rows;
  { t with store = Array.append t.store (Array.of_list new_rows) }

let get t i col = t.store.(i).(Schema.index_of_exn t.schema col)

let column_values t col =
  let idx = Schema.index_of_exn t.schema col in
  Array.to_list (Array.map (fun r -> r.(idx)) t.store)

let filter pred t =
  { t with store = Array.of_list (List.filter pred (to_list t)) }

let map_rows schema f t =
  let store = Array.map f t.store in
  Array.iter (validate schema) store;
  { schema; store }

let project t cols =
  let idxs = List.map (Schema.index_of_exn t.schema) cols in
  let old_cols = Array.of_list (Schema.columns t.schema) in
  let schema = Schema.make (List.map (fun i -> old_cols.(i)) idxs) in
  let pick r = Array.of_list (List.map (fun i -> r.(i)) idxs) in
  { schema; store = Array.map pick t.store }

let rename alias t = { t with schema = Schema.qualify alias t.schema }

let product a b =
  let schema = Schema.concat a.schema b.schema in
  let out = ref [] in
  Array.iter
    (fun ra ->
      Array.iter (fun rb -> out := Array.append ra rb :: !out) b.store)
    a.store;
  { schema; store = Array.of_list (List.rev !out) }

let sort_by cmp t =
  let store = Array.copy t.store in
  Array.sort cmp store;
  { t with store }

let column_stats t col =
  match Schema.index_of t.schema col with
  | None -> None
  | Some idx ->
      let acc = ref None in
      Array.iter
        (fun r ->
          match Value.to_float r.(idx) with
          | None -> ()
          | Some x -> (
              match !acc with
              | None -> acc := Some (x, x, x)
              | Some (lo, hi, sum) ->
                  acc := Some (min lo x, max hi x, sum +. x)))
        t.store;
      !acc

let to_table ?max_rows t =
  let names = Schema.names t.schema in
  let all = to_list t in
  let shown, elided =
    match max_rows with
    | Some m when List.length all > m ->
        (List.filteri (fun i _ -> i < m) all, List.length all - m)
    | _ -> (all, 0)
  in
  let rows =
    List.map (fun r -> Array.to_list (Array.map Value.to_string r)) shown
  in
  let base = Pb_util.Table.render ~header:names rows in
  if elided > 0 then base ^ Printf.sprintf "... (%d more rows)\n" elided
  else base

let pp ppf t = Format.pp_print_string ppf (to_table t)
