(** Relation schemas: ordered, named, typed columns.

    Column names are case-insensitive (stored lower-cased), matching the
    SQL front end. A column may carry a relation qualifier so that join
    results can disambiguate (e.g. ["r.id"] vs ["p.id"]). *)

type column = { name : string; ty : Value.ty }

type t
(** Immutable schema. *)

val make : column list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val columns : t -> column list
val arity : t -> int

val index_of : t -> string -> int option
(** Case-insensitive lookup. A lookup for an unqualified name ["id"] also
    matches a unique qualified column ["r.id"]; [None] if absent or
    ambiguous. *)

val index_of_exn : t -> string -> int
(** Like {!index_of} but raises [Not_found] with a descriptive message via
    [Failure]. *)

val column_ty : t -> string -> Value.ty option
val names : t -> string list

val qualify : string -> t -> t
(** [qualify alias schema] renames every column to ["alias.name"],
    dropping any previous qualifier. Used when a FROM clause aliases a
    relation. *)

val concat : t -> t -> t
(** Schema of a product/join; raises on clashes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
