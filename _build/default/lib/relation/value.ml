type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = T_bool | T_int | T_float | T_str

exception Type_error of string

let ty_of = function
  | Null -> None
  | Bool _ -> Some T_bool
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Str _ -> Some T_str

let ty_to_string = function
  | T_bool -> "BOOL"
  | T_int -> "INT"
  | T_float -> "FLOAT"
  | T_str -> "TEXT"

let is_null = function Null -> true | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare_values a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare_values a b = 0

let to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v = Format.pp_print_string ppf (to_string v)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | Str _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Bool b -> Some (if b then 1 else 0)
  | Null | Str _ | Float _ -> None

let of_literal s =
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> (
            match String.lowercase_ascii s with
            | "true" -> Bool true
            | "false" -> Bool false
            | _ -> Str s))

let numeric op_int op_float name a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (op_int x y)
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> Float (op_float x y)
      | _ -> assert false)
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "%s: non-numeric operands (%s, %s)" name
              (to_string a) (to_string b)))

let add = numeric ( + ) ( +. ) "+"
let sub = numeric ( - ) ( -. ) "-"
let mul = numeric ( * ) ( *. ) "*"

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ -> (
      match (to_float a, to_float b) with
      | Some _, Some 0.0 -> Null
      | Some x, Some y -> Float (x /. y)
      | _ ->
          raise
            (Type_error
               (Printf.sprintf "/: non-numeric operands (%s, %s)"
                  (to_string a) (to_string b))))

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | v -> raise (Type_error ("unary -: non-numeric operand " ^ to_string v))

let cmp_bool test a b =
  if is_null a || is_null b then Null else Bool (test (compare_values a b))

let logical_and a b =
  match (a, b) with
  | Bool false, _ | _, Bool false -> Bool false
  | Bool true, Bool true -> Bool true
  | (Null | Bool _), (Null | Bool _) -> Null
  | _ -> raise (Type_error "AND: non-boolean operand")

let logical_or a b =
  match (a, b) with
  | Bool true, _ | _, Bool true -> Bool true
  | Bool false, Bool false -> Bool false
  | (Null | Bool _), (Null | Bool _) -> Null
  | _ -> raise (Type_error "OR: non-boolean operand")

let logical_not = function
  | Bool b -> Bool (not b)
  | Null -> Null
  | _ -> raise (Type_error "NOT: non-boolean operand")

let truthy = function Bool true -> true | _ -> false
