(** Dynamically-typed SQL values.

    Both the SQL substrate and PaQL evaluate expressions over these values
    with SQL-flavoured semantics: three-valued logic is approximated by
    treating NULL as absorbing for arithmetic and as "unknown = false" in
    filters, and integers and floats compare and combine numerically. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = T_bool | T_int | T_float | T_str

val ty_of : t -> ty option
(** Type of a non-NULL value; [None] for [Null]. *)

val ty_to_string : ty -> string

val is_null : t -> bool

val compare_values : t -> t -> int
(** Total order used by ORDER BY and index structures: NULL sorts first;
    numeric values compare numerically across Int/Float; distinct types
    otherwise order as bool < numeric < string. *)

val equal : t -> t -> bool
(** [compare_values a b = 0]. *)

val to_string : t -> string
(** Display form: NULL prints as the empty-marker ["NULL"], floats drop a
    trailing [.] when integral. *)

val pp : Format.formatter -> t -> unit

val to_float : t -> float option
(** Numeric view of Int/Float/Bool(as 0/1); [None] otherwise. *)

val to_int : t -> int option

val of_literal : string -> t
(** Best-effort parse used by the CSV loader: int, then float, then
    [true]/[false], then string; the empty string becomes [Null]. *)

(* Arithmetic and comparisons with NULL propagation. Raise
   [Type_error] on non-numeric operands. *)

exception Type_error of string

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

val cmp_bool : (int -> bool) -> t -> t -> t
(** [cmp_bool test a b] is [Null] if either side is NULL, otherwise
    [Bool (test (compare_values a b))]; strings compare lexicographically,
    numbers numerically. *)

val logical_and : t -> t -> t
val logical_or : t -> t -> t
val logical_not : t -> t
(** Kleene three-valued logic over [Bool]/[Null]. *)

val truthy : t -> bool
(** Filter semantics: [Bool true] is true; NULL and everything else is
    false. *)
