(** Diverse package results — the §5 "challenges" item the paper plans to
    explore ("devise techniques to present the user with the most diverse
    and potentially interesting packages"), implemented here as an
    extension.

    Diversity is measured as Jaccard distance between package supports;
    the selection is greedy max-min (farthest-point) seeded with the
    best-objective package, which guarantees a 2-approximation of the
    optimal max-min dispersion. *)

val jaccard_distance : Pb_paql.Package.t -> Pb_paql.Package.t -> float
(** 1 − |A∩B| / |A∪B| over supports; two empty packages are at distance
    0. *)

val select :
  k:int -> Pb_paql.Ast.t -> Pb_paql.Package.t list -> Pb_paql.Package.t list
(** Greedy max-min pick of [k] packages from a pool, seeded with the pool's
    best package under the query's objective. Returns fewer when the pool
    is smaller. *)

val diverse_packages :
  ?pool_size:int ->
  ?k:int ->
  Pb_sql.Database.t ->
  Pb_paql.Ast.t ->
  Pb_paql.Package.t list
(** Enumerate up to [pool_size] (default 2000) valid packages, then
    {!select} [k] (default 5) diverse ones. *)
