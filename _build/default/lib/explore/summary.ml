module Sql = Pb_sql.Ast
module Ast = Pb_paql.Ast
module Package = Pb_paql.Package
module Value = Pb_relation.Value

type axis = { label : string; expr : Sql.expr }

type t = {
  axes : axis * axis;
  points : (float * float) list;
  current : (float * float) option;
  complete : bool;
}

let count_axis = { label = "COUNT(*)"; expr = Sql.Agg (Sql.Count_star, None) }

let axis_of_expr e = { label = Sql.expr_to_string e; expr = e }

(* Collect the aggregate sub-expressions of a constraint formula, in
   appearance order. *)
let rec aggregates (e : Sql.expr) =
  match e with
  | Sql.Agg (Sql.Count_star, _) -> [ e ]
  | Sql.Agg (_, Some _) -> [ e ]
  | Sql.Agg (_, None) -> []
  | Sql.Lit _ | Sql.Col _ -> []
  | Sql.Unary_minus x | Sql.Not x | Sql.Is_null (x, _) | Sql.Like (x, _, _) ->
      aggregates x
  | Sql.Binop (_, a, b) -> aggregates a @ aggregates b
  | Sql.Between (a, b, c) -> aggregates a @ aggregates b @ aggregates c
  | Sql.In_list (x, xs, _) -> aggregates x @ List.concat_map aggregates xs
  | Sql.In_query (x, _, _) -> aggregates x
  | Sql.Exists _ -> []
  | Sql.Func (_, xs) -> List.concat_map aggregates xs
  | Sql.Case (branches, default) ->
      List.concat_map (fun (c, e) -> aggregates c @ aggregates e) branches
      @ (match default with Some e -> aggregates e | None -> [])

let is_sum = function Sql.Agg (Sql.Sum, Some _) -> true | _ -> false

let pick_axes (q : Ast.t) =
  let constraint_aggs =
    match q.such_that with Some e -> aggregates e | None -> []
  in
  let objective_agg =
    match q.objective with
    | Some (_, e) -> ( match aggregates e with a :: _ -> Some a | [] -> None)
    | None -> None
  in
  let y =
    match objective_agg with
    | Some e -> axis_of_expr e
    | None -> (
        match constraint_aggs with e :: _ -> axis_of_expr e | [] -> count_axis)
  in
  let x =
    let different e = Sql.expr_to_string e <> y.label in
    match List.find_opt (fun e -> is_sum e && different e) constraint_aggs with
    | Some e -> axis_of_expr e
    | None -> (
        match List.find_opt different constraint_aggs with
        | Some e -> axis_of_expr e
        | None -> count_axis)
  in
  (x, y)

let project db axes pkg =
  let eval expr =
    let materialized = Package.materialize pkg in
    let schema = Pb_relation.Relation.schema materialized in
    let group = Pb_relation.Relation.to_list materialized in
    match
      Value.to_float (Pb_sql.Executor.eval_agg_expr ~db schema group expr)
    with
    | Some v -> v
    | None -> 0.0
  in
  let x, y = axes in
  (eval x.expr, eval y.expr)

let build ?(max_packages = 2000) ?current db (q : Ast.t) =
  let axes = pick_axes q in
  let coeffs = Pb_core.Coeffs.make db q in
  let packages =
    Pb_core.Brute_force.enumerate_valid ~limit:max_packages coeffs
  in
  let complete = List.length packages < max_packages in
  {
    axes;
    points = List.map (project db axes) packages;
    current = Option.map (project db axes) current;
    complete;
  }

let render ?(width = 64) ?(height = 16) t =
  let all_points =
    match t.current with Some p -> p :: t.points | None -> t.points
  in
  match all_points with
  | [] -> "(no valid packages found)\n"
  | _ ->
      let xs = List.map fst all_points and ys = List.map snd all_points in
      let pad lo hi = if hi -. lo < 1e-9 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
      let xmin, xmax = pad (Pb_util.Stats.minimum xs) (Pb_util.Stats.maximum xs) in
      let ymin, ymax = pad (Pb_util.Stats.minimum ys) (Pb_util.Stats.maximum ys) in
      let grid = Array.make_matrix height width ' ' in
      let place (x, y) glyph =
        let gx =
          int_of_float
            (Float.round ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1)))
        in
        let gy =
          int_of_float
            (Float.round ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1)))
        in
        let gy = height - 1 - gy in
        match (grid.(gy).(gx), glyph) with
        | _, '@' -> grid.(gy).(gx) <- '@'
        | '@', _ -> ()
        | ' ', g -> grid.(gy).(gx) <- g
        | _, _ -> grid.(gy).(gx) <- '*'
      in
      List.iter (fun p -> place p 'o') t.points;
      (match t.current with Some p -> place p '@' | None -> ());
      let buf = Buffer.create (width * height * 2) in
      let xaxis, yaxis = t.axes in
      Buffer.add_string buf
        (Printf.sprintf "y: %s in [%g, %g]\n" yaxis.label ymin ymax);
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (String.init width (fun i -> row.(i)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "x: %s in [%g, %g]\n" xaxis.label xmin xmax);
      Buffer.add_string buf
        (if t.complete then
           Printf.sprintf "%d package(s) in the result space\n"
             (List.length t.points)
         else
           Printf.sprintf "running — %d package(s) found so far\n"
             (List.length t.points));
      Buffer.contents buf
