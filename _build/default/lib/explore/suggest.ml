module Sql = Pb_sql.Ast
module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation
module Ast = Pb_paql.Ast
module Package = Pb_paql.Package

type highlight =
  | Cell of { row : int; column : string }
  | Column of string
  | Row of int

type kind = Base_constraint | Global_constraint | Objective

type suggestion = {
  kind : kind;
  paql_fragment : string;
  description : string;
  refined : Ast.t;
}

let conjoin existing extra =
  match existing with
  | None -> Some extra
  | Some e -> Some (Sql.Binop (Sql.And, e, extra))

let apply_base (q : Ast.t) pred = { q with where = conjoin q.where pred }

let apply_global (q : Ast.t) pred =
  { q with such_that = conjoin q.such_that pred }

let apply_objective (q : Ast.t) obj = { q with objective = Some obj }

let qualified alias col = Sql.Col (alias ^ "." ^ col)

let round_value v =
  (* Suggest friendly thresholds rather than raw fractional values. *)
  match v with
  | Value.Float f -> Value.Float (Float.round f)
  | v -> v

let numeric_column schema col =
  match Schema.column_ty schema col with
  | Some (Value.T_int | Value.T_float) -> true
  | Some (Value.T_bool | Value.T_str) | None -> false

let base_suggestion q ~alias ~col op v =
  let pred = Sql.Binop (op, qualified alias col, Sql.Lit v) in
  {
    kind = Base_constraint;
    paql_fragment = Sql.expr_to_string pred;
    description =
      Printf.sprintf "every %s must have %s %s %s" alias col
        (match op with
        | Sql.Le -> "at most"
        | Sql.Ge -> "at least"
        | Sql.Eq -> "equal to"
        | _ -> Sql.binop_to_string op)
        (Value.to_string v);
    refined = apply_base q pred;
  }

let global_suggestion q ~pkg_alias ~col ~agg op v phrase =
  let agg_expr =
    match agg with
    | `Sum -> Sql.Agg (Sql.Sum, Some (qualified pkg_alias col))
    | `Avg -> Sql.Agg (Sql.Avg, Some (qualified pkg_alias col))
  in
  let pred = Sql.Binop (op, agg_expr, Sql.Lit v) in
  {
    kind = Global_constraint;
    paql_fragment = Sql.expr_to_string pred;
    description = phrase;
    refined = apply_global q pred;
  }

let objective_suggestion q ~pkg_alias ~col dir =
  let expr = Sql.Agg (Sql.Sum, Some (qualified pkg_alias col)) in
  {
    kind = Objective;
    paql_fragment =
      (match dir with
      | Ast.Maximize -> "MAXIMIZE " ^ Sql.expr_to_string expr
      | Ast.Minimize -> "MINIMIZE " ^ Sql.expr_to_string expr);
    description =
      Printf.sprintf "%s the total %s of the package"
        (match dir with Ast.Maximize -> "maximize" | Ast.Minimize -> "minimize")
        col;
    refined = apply_objective q (dir, expr);
  }

let sample_column_values sample col =
  List.filter_map Value.to_float
    (Pb_relation.Relation.column_values (Package.materialize sample) col)

let suggest (q : Ast.t) ~sample highlight =
  let base_rel = Package.base sample in
  let schema = Relation.schema base_rel in
  let alias = q.input_alias and pkg_alias = q.package_alias in
  let col_of name =
    match Schema.index_of schema name with
    | Some _ ->
        (* Normalize to the base name so both r.col and p.col qualify. *)
        (match String.rindex_opt name '.' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> String.lowercase_ascii name)
    | None -> failwith ("Suggest: unknown column " ^ name)
  in
  match highlight with
  | Cell { row; column } ->
      let col = col_of column in
      let materialized = Package.materialize sample in
      if row < 0 || row >= Relation.cardinality materialized then
        failwith "Suggest: sample row out of range";
      let v = round_value (Relation.get materialized row col) in
      if numeric_column schema col then begin
        let vf = Option.value (Value.to_float v) ~default:0.0 in
        let card = max 1 (Package.cardinality sample) in
        let total = Value.Float (Float.round (vf *. float_of_int card)) in
        [
          base_suggestion q ~alias ~col Sql.Le v;
          base_suggestion q ~alias ~col Sql.Ge v;
          global_suggestion q ~pkg_alias ~col ~agg:`Sum Sql.Le total
            (Printf.sprintf
               "the total %s must stay at most %s (the selected value \
                scaled to the whole package)"
               col (Value.to_string total));
          global_suggestion q ~pkg_alias ~col ~agg:`Avg Sql.Le v
            (Printf.sprintf "the average %s must stay at most %s" col
               (Value.to_string v));
          objective_suggestion q ~pkg_alias ~col Ast.Minimize;
          objective_suggestion q ~pkg_alias ~col Ast.Maximize;
        ]
      end
      else [ base_suggestion q ~alias ~col Sql.Eq v ]
  | Column column ->
      let col = col_of column in
      if not (numeric_column schema col) then
        (* Categorical column: propose pinning to its most common value. *)
        let values =
          Pb_relation.Relation.column_values (Package.materialize sample) col
        in
        let tally = Hashtbl.create 8 in
        List.iter
          (fun v ->
            let k = Value.to_string v in
            Hashtbl.replace tally k
              (1 + Option.value (Hashtbl.find_opt tally k) ~default:0))
          values;
        let mode =
          Hashtbl.fold
            (fun k n acc ->
              match acc with
              | Some (_, best) when best >= n -> acc
              | _ -> Some (k, n))
            tally None
        in
        (match mode with
        | Some (v, _) -> [ base_suggestion q ~alias ~col Sql.Eq (Value.Str v) ]
        | None -> [])
      else begin
        let values = sample_column_values sample col in
        let total = List.fold_left ( +. ) 0.0 values in
        let mean = Pb_util.Stats.mean values in
        let lo = Value.Float (Float.round (total *. 0.9)) in
        let hi = Value.Float (Float.round (total *. 1.1)) in
        [
          {
            kind = Global_constraint;
            paql_fragment =
              Printf.sprintf "SUM(%s.%s) BETWEEN %s AND %s" pkg_alias col
                (Value.to_string lo) (Value.to_string hi);
            description =
              Printf.sprintf
                "keep the total %s within 10%% of the sample's %s" col
                (Pb_util.Table.float_cell ~digits:0 total);
            refined =
              apply_global q
                (Sql.Between
                   ( Sql.Agg (Sql.Sum, Some (qualified pkg_alias col)),
                     Sql.Lit lo,
                     Sql.Lit hi ));
          };
          global_suggestion q ~pkg_alias ~col ~agg:`Avg Sql.Le
            (Value.Float (Float.round mean))
            (Printf.sprintf "the average %s must stay at most %s" col
               (Pb_util.Table.float_cell ~digits:0 mean));
          objective_suggestion q ~pkg_alias ~col Ast.Minimize;
          objective_suggestion q ~pkg_alias ~col Ast.Maximize;
        ]
      end
  | Row row ->
      let materialized = Package.materialize sample in
      if row < 0 || row >= Relation.cardinality materialized then
        failwith "Suggest: sample row out of range";
      (* Generalize the tuple's categorical attributes into base
         constraints ("more meals like this one"). *)
      List.filter_map
        (fun { Schema.name; ty } ->
          let col = col_of name in
          match ty with
          | Value.T_str ->
              let v = Relation.get materialized row col in
              if Value.is_null v then None
              else Some (base_suggestion q ~alias ~col Sql.Eq v)
          | Value.T_bool | Value.T_int | Value.T_float -> None)
        (Schema.columns schema)
