(** The package template (§3.1): the tabular interface abstraction that
    couples a sample package with editable constraint representations —
    the terminal counterpart of Figure 1's central component.

    The template "is quite expressive but is not as powerful as the PaQL
    language itself": it only exposes conjunctive WHERE / SUCH THAT
    clauses and a single objective, which is exactly what {!render}
    displays and what {!Suggest} refines. *)

type t = {
  query : Pb_paql.Ast.t;
  sample : Pb_paql.Package.t option;  (** None until evaluation finds one *)
}

val create : Pb_sql.Database.t -> Pb_paql.Ast.t -> t
(** Evaluate the query (hybrid strategy) to obtain the initial sample
    package. *)

val refine : Pb_sql.Database.t -> t -> Pb_paql.Ast.t -> t
(** Re-evaluate with a refined query (e.g. an applied suggestion), keeping
    the old sample if the refined query has no valid package. *)

val render : ?show_summary:bool -> Pb_sql.Database.t -> t -> string
(** Multi-section rendering: sample package table, base constraints,
    global constraints, objective (all in both PaQL and natural
    language), and optionally the §3.2 visual summary. *)
