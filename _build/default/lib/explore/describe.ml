module Sql = Pb_sql.Ast
module Value = Pb_relation.Value

let base_name col =
  match String.rindex_opt col '.' with
  | Some i -> String.sub col (i + 1) (String.length col - i - 1)
  | None -> col

(* Split a conjunction into its top-level conjuncts. *)
let rec conjuncts = function
  | Sql.Binop (Sql.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let value_phrase v =
  match v with Value.Str s -> "'" ^ s ^ "'" | _ -> Value.to_string v

let rec scalar_phrase e =
  match e with
  | Sql.Col c -> base_name c
  | Sql.Lit v -> value_phrase v
  | Sql.Agg (Sql.Count_star, _) -> "the number of tuples"
  | Sql.Agg (Sql.Sum, Some a) -> "the total of " ^ scalar_phrase a
  | Sql.Agg (Sql.Avg, Some a) -> "the average " ^ scalar_phrase a
  | Sql.Agg (Sql.Min, Some a) -> "the smallest " ^ scalar_phrase a
  | Sql.Agg (Sql.Max, Some a) -> "the largest " ^ scalar_phrase a
  | Sql.Binop (Sql.Add, a, b) -> scalar_phrase a ^ " plus " ^ scalar_phrase b
  | Sql.Binop (Sql.Sub, a, b) -> scalar_phrase a ^ " minus " ^ scalar_phrase b
  | Sql.Binop (Sql.Mul, a, b) -> scalar_phrase a ^ " times " ^ scalar_phrase b
  | Sql.Binop (Sql.Div, a, b) -> scalar_phrase a ^ " over " ^ scalar_phrase b
  | Sql.Unary_minus a -> "minus " ^ scalar_phrase a
  | e -> Sql.expr_to_string e

let cmp_phrase op a b =
  match op with
  | Sql.Eq -> a ^ " equal to " ^ b
  | Sql.Neq -> a ^ " different from " ^ b
  | Sql.Lt -> a ^ " below " ^ b
  | Sql.Le -> a ^ " at most " ^ b
  | Sql.Gt -> a ^ " above " ^ b
  | Sql.Ge -> a ^ " at least " ^ b
  | Sql.Add | Sql.Sub | Sql.Mul | Sql.Div | Sql.And | Sql.Or ->
      a ^ " " ^ Sql.binop_to_string op ^ " " ^ b

let rec predicate_phrase e =
  match e with
  | Sql.Binop (((Sql.Eq | Sql.Neq | Sql.Lt | Sql.Le | Sql.Gt | Sql.Ge) as op), a, b)
    ->
      cmp_phrase op (scalar_phrase a) (scalar_phrase b)
  | Sql.Between (x, lo, hi) ->
      Printf.sprintf "%s between %s and %s" (scalar_phrase x)
        (scalar_phrase lo) (scalar_phrase hi)
  | Sql.In_list (x, items, neg) ->
      Printf.sprintf "%s %s %s" (scalar_phrase x)
        (if neg then "not one of" else "one of")
        (String.concat ", " (List.map scalar_phrase items))
  | Sql.Is_null (x, neg) ->
      scalar_phrase x ^ if neg then " present" else " missing"
  | Sql.Like (x, pat, neg) ->
      Printf.sprintf "%s %s '%s'" (scalar_phrase x)
        (if neg then "not matching" else "matching")
        pat
  | Sql.Not inner -> "not (" ^ predicate_phrase inner ^ ")"
  | Sql.Binop (Sql.Or, a, b) ->
      "either " ^ predicate_phrase a ^ " or " ^ predicate_phrase b
  | Sql.Binop (Sql.And, a, b) ->
      predicate_phrase a ^ " and " ^ predicate_phrase b
  | e -> Sql.expr_to_string e

(* Special-case the constraint shapes the template produces most often so
   they read idiomatically. *)
let global_sentence e =
  match e with
  | Sql.Binop (Sql.Eq, Sql.Agg (Sql.Count_star, _), Sql.Lit v)
  | Sql.Binop (Sql.Eq, Sql.Lit v, Sql.Agg (Sql.Count_star, _)) ->
      Printf.sprintf "the package must contain exactly %s tuples"
        (Value.to_string v)
  | Sql.Between (Sql.Agg (Sql.Count_star, _), lo, hi) ->
      Printf.sprintf "the package must contain between %s and %s tuples"
        (scalar_phrase lo) (scalar_phrase hi)
  | e -> "the package must have " ^ predicate_phrase e

let describe_base ~input_alias e =
  List.map
    (fun conjunct ->
      Printf.sprintf "every %s must have %s" input_alias
        (predicate_phrase conjunct))
    (conjuncts e)

let describe_global e = List.map global_sentence (conjuncts e)

let strip_article s =
  if String.length s > 4 && String.sub s 0 4 = "the " then
    String.sub s 4 (String.length s - 4)
  else s

let describe_objective (dir, e) =
  Printf.sprintf "among valid packages, prefer the %s %s"
    (match dir with Pb_paql.Ast.Maximize -> "largest" | Minimize -> "smallest")
    (strip_article (scalar_phrase e))

let describe_query (q : Pb_paql.Ast.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Build a package of tuples from %s (as %s).\n"
       q.input_relation q.input_alias);
  (match q.repeat with
  | None ->
      Buffer.add_string buf "Each tuple may be used at most once.\n"
  | Some k ->
      Buffer.add_string buf
        (Printf.sprintf "Each tuple may be repeated up to %d extra time(s).\n" k));
  (match q.where with
  | None -> ()
  | Some e ->
      List.iter
        (fun s -> Buffer.add_string buf ("- " ^ s ^ "\n"))
        (describe_base ~input_alias:q.input_alias e));
  (match q.such_that with
  | None -> ()
  | Some e ->
      List.iter
        (fun s -> Buffer.add_string buf ("- " ^ s ^ "\n"))
        (describe_global e));
  (match q.objective with
  | None -> ()
  | Some obj -> Buffer.add_string buf ("- " ^ describe_objective obj ^ "\n"));
  Buffer.contents buf
