module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics

let jaccard_distance a b =
  let sa = Package.support a and sb = Package.support b in
  let module IS = Set.Make (Int) in
  let sa = IS.of_list sa and sb = IS.of_list sb in
  let union = IS.cardinal (IS.union sa sb) in
  if union = 0 then 0.0
  else 1.0 -. (float_of_int (IS.cardinal (IS.inter sa sb)) /. float_of_int union)

let select ~k query pool =
  match pool with
  | [] -> []
  | _ ->
      let best =
        List.fold_left
          (fun acc pkg ->
            match acc with
            | None -> Some pkg
            | Some cur ->
                if Semantics.compare_quality query pkg cur > 0 then Some pkg
                else acc)
          None pool
      in
      let seed = Option.get best in
      let chosen = ref [ seed ] in
      let remaining = ref (List.filter (fun p -> p != seed) pool) in
      while List.length !chosen < k && !remaining <> [] do
        (* Farthest-point: maximize the distance to the nearest chosen. *)
        let score pkg =
          List.fold_left
            (fun acc c -> Float.min acc (jaccard_distance pkg c))
            infinity !chosen
        in
        let next =
          List.fold_left
            (fun acc pkg ->
              match acc with
              | None -> Some (pkg, score pkg)
              | Some (_, best_score) ->
                  let s = score pkg in
                  if s > best_score then Some (pkg, s) else acc)
            None !remaining
        in
        match next with
        | None -> remaining := []
        | Some (pkg, _) ->
            chosen := !chosen @ [ pkg ];
            remaining := List.filter (fun p -> p != pkg) !remaining
      done;
      !chosen

let diverse_packages ?(pool_size = 2000) ?(k = 5) db query =
  let coeffs = Pb_core.Coeffs.make db query in
  let pool = Pb_core.Brute_force.enumerate_valid ~limit:pool_size coeffs in
  select ~k query pool
