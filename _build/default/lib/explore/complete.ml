module Lexer = Pb_sql.Lexer
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation

(* Clause the cursor sits in, tracked by the last structural keyword. *)
type clause =
  | At_start
  | After_select
  | After_package_open  (* inside PACKAGE( *)
  | After_package_close
  | After_as
  | In_from
  | After_table
  | After_alias
  | After_repeat
  | In_where
  | In_such_that
  | In_objective

type context = {
  mutable clause : clause;
  mutable table : string option;
  mutable alias : string option;
  mutable package_alias : string option;
  mutable last : Lexer.token;
}

let is_word_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
  || ch = '_'

(* Split the prefix into the completed part and a trailing partial word. *)
let split_word text =
  let n = String.length text in
  let rec back i = if i > 0 && is_word_char text.[i - 1] then back (i - 1) else i in
  let start = back n in
  (* A partial word glued to a '.' (e.g. "r.cal") keeps the qualifier in
     the word so column filtering sees it. *)
  let start =
    if start > 0 && text.[start - 1] = '.' then
      let q = back (start - 1) in
      if q < start - 1 then q else start
    else start
  in
  (String.sub text 0 start, String.sub text start (n - start))

let scan text =
  match Lexer.tokenize text with
  | exception Lexer.Lex_error _ -> None
  | tokens ->
      let ctx =
        {
          clause = At_start;
          table = None;
          alias = None;
          package_alias = None;
          last = Lexer.Eof;
        }
      in
      let expecting_package_alias = ref false in
      List.iter
        (fun token ->
          (match token with
          | Lexer.Keyword "SELECT" -> ctx.clause <- After_select
          | Lexer.Keyword "PACKAGE" -> ()
          | Lexer.Lparen when ctx.clause = After_select ->
              ctx.clause <- After_package_open
          | Lexer.Rparen when ctx.clause = After_package_open ->
              ctx.clause <- After_package_close
          | Lexer.Keyword "AS" when ctx.clause = After_package_close ->
              ctx.clause <- After_as;
              expecting_package_alias := true
          | Lexer.Keyword "FROM" -> ctx.clause <- In_from
          | Lexer.Keyword "REPEAT" -> ctx.clause <- After_repeat
          | Lexer.Keyword "WHERE" -> ctx.clause <- In_where
          | Lexer.Keyword "THAT" -> ctx.clause <- In_such_that
          | Lexer.Keyword "SUCH" -> ()
          | Lexer.Keyword ("MAXIMIZE" | "MINIMIZE") -> ctx.clause <- In_objective
          | Lexer.Ident name -> (
              match ctx.clause with
              | After_as when !expecting_package_alias ->
                  ctx.package_alias <- Some name;
                  expecting_package_alias := false
              | In_from when ctx.table = None -> (
                  ctx.table <- Some name;
                  ctx.clause <- After_table;
                  (* default alias = table name until an alias appears *)
                  match ctx.alias with None -> ctx.alias <- Some name | Some _ -> ())
              | After_table ->
                  ctx.alias <- Some name;
                  ctx.clause <- After_alias
              | _ -> ())
          | _ -> ());
          if token <> Lexer.Eof then ctx.last <- token)
        tokens;
      Some ctx

let table_columns db table =
  match Pb_sql.Database.find db table with
  | Some rel -> Schema.names (Relation.schema rel)
  | None -> []

let qualified_columns db ctx qualifier =
  match ctx.table with
  | None -> []
  | Some table ->
      List.map
        (fun col -> Printf.sprintf "%s.%s" qualifier col)
        (table_columns db table)

let comparison_follow = [ "="; "<"; "<="; ">"; ">="; "<>"; "BETWEEN"; "IN" ]

let connectives = [ "AND"; "OR" ]

let aggregates = [ "COUNT(*)"; "SUM("; "AVG("; "MIN("; "MAX(" ]

(* Is the previous token a complete value/expression end, so that an
   operator or connective comes next? *)
let after_value = function
  | Lexer.Ident _ | Lexer.Int_lit _ | Lexer.Float_lit _ | Lexer.Str_lit _
  | Lexer.Rparen | Lexer.Star ->
      true
  | _ -> false

let candidates db ctx =
  match ctx.clause with
  | At_start -> [ "SELECT" ]
  | After_select -> [ "PACKAGE(" ]
  | After_package_open -> [ ")" ]
  | After_package_close -> [ "AS"; "FROM" ]
  | After_as -> [ "FROM" ]
  | In_from -> Pb_sql.Database.table_names db
  | After_table | After_alias | After_repeat ->
      let tail =
        [ "WHERE"; "SUCH THAT"; "MAXIMIZE"; "MINIMIZE" ]
        @ (if ctx.clause = After_table then [ "REPEAT" ] else [])
      in
      tail
  | In_where ->
      let qualifier =
        Option.value ctx.alias ~default:(Option.value ctx.table ~default:"r")
      in
      if after_value ctx.last then
        comparison_follow @ connectives
        @ [ "SUCH THAT"; "MAXIMIZE"; "MINIMIZE" ]
      else qualified_columns db ctx qualifier
  | In_such_that ->
      let qualifier = Option.value ctx.package_alias ~default:"package" in
      if after_value ctx.last then
        comparison_follow @ connectives @ [ "MAXIMIZE"; "MINIMIZE" ]
      else aggregates @ qualified_columns db ctx qualifier
  | In_objective ->
      let qualifier = Option.value ctx.package_alias ~default:"package" in
      if after_value ctx.last then []
      else aggregates @ qualified_columns db ctx qualifier

let suggest db text =
  let head, word = split_word text in
  match scan head with
  | None -> []
  | Some ctx ->
      let all = candidates db ctx in
      let matches_word s =
        word = ""
        ||
        let w = String.lowercase_ascii word and s = String.lowercase_ascii s in
        String.length s >= String.length w && String.sub s 0 (String.length w) = w
      in
      List.sort_uniq String.compare (List.filter matches_word all)
