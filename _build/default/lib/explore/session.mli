(** Adaptive exploration (§3.3).

    "PACKAGEBUILDER initially presents a sample package that satisfies a
    few basic constraints. Users can then select good tuples within the
    sample, and request a new sample that replaces the unselected tuples.
    Users can repeat this process until they reach the ideal package."

    A session tracks the current sample and the set of packages already
    shown; resampling pins the kept tuples and asks the solver (or, for
    non-linearizable queries, randomized repair) for a {e different}
    valid completion, excluding everything seen so far with no-good
    cuts. *)

type t

val start : ?seed:int -> Pb_sql.Database.t -> Pb_paql.Ast.t -> (t, string) result
(** Evaluate the query for the initial sample; [Error] when the query has
    no valid package. *)

val current : t -> Pb_paql.Package.t
val rounds : t -> int
(** Resampling rounds performed. *)

val seen : t -> Pb_paql.Package.t list
(** All samples shown, most recent first. *)

val keep_and_resample : t -> keep:int list -> t * [ `Fresh | `Exhausted ]
(** [keep] lists candidate indices (from the current sample's support) the
    user liked; every kept tuple appears with at least its current
    multiplicity in the new sample. [`Exhausted] means no unseen valid
    package extends the kept tuples — the current sample is returned
    unchanged (its tuples are the user's best option). *)

val infer_constraints : t -> keep:int list -> Suggest.suggestion list
(** "PACKAGEBUILDER uses these selections ... to identify additional
    package constraints": categorical attributes shared by every kept
    tuple become suggested base constraints, and tight numeric ranges
    across kept tuples become suggested per-tuple bounds. *)

val simulate :
  ?seed:int ->
  ?max_rounds:int ->
  Pb_sql.Database.t ->
  Pb_paql.Ast.t ->
  target:int list ->
  (int * bool) option
(** Drive a session with a simulated user whose ideal package is the
    candidate-index set [target]: each round the user keeps exactly the
    tuples belonging to the target. Returns [Some (rounds, converged)]
    where [converged] means the sample's support became a subset of the
    target within [max_rounds] (default 50); [None] when the query has no
    valid package at all. Used by experiment T7. *)
