(** Visual summary of the package space (§3.2, bottom of Figure 1).

    "The system analyzes the current query specification and selects two
    dimensions to visually layout the valid packages along. Users can use
    the visual summary to navigate through the available packages."

    The terminal rendering plots one glyph per discovered valid package on
    a character grid; the current package renders as ['@'] (its "position
    in the result space is highlighted"), other packages as ['o'] and
    overlapping ones as ['*']. When enumeration stops early, the footer
    shows "running — N packages found so far", matching the interface's
    incompleteness indicator. *)

type axis = {
  label : string;  (** e.g. "SUM(calories)" *)
  expr : Pb_sql.Ast.expr;  (** aggregate evaluated per package *)
}

val pick_axes : Pb_paql.Ast.t -> axis * axis
(** Choose the two display dimensions from the query: the objective
    aggregate (when present) on the y-axis and the first SUM-style global
    constraint on the x-axis; falls back to COUNT and the first numeric
    aggregate mentioned anywhere, or COUNT twice for constraint-free
    queries. *)

type t = {
  axes : axis * axis;
  points : (float * float) list;  (** one point per package found *)
  current : (float * float) option;
  complete : bool;  (** false when the space was only partially explored *)
}

val build :
  ?max_packages:int ->
  ?current:Pb_paql.Package.t ->
  Pb_sql.Database.t ->
  Pb_paql.Ast.t ->
  t
(** Enumerate (up to [max_packages], default 2000) valid packages with
    pruned exhaustive search and project them on the chosen axes. *)

val render : ?width:int -> ?height:int -> t -> string
(** ASCII scatter plot (default 64×16) with axis ranges in the footer. *)
