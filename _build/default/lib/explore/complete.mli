(** PaQL auto-suggest — Figure 1's "An auto-suggest feature helps with
    syntax": given the text typed so far, propose what can come next.

    Suggestions are grammatical (keywords for the current clause),
    catalog-aware (table names after FROM, column references inside
    constraints, qualified by the query's aliases) and prefix-filtered
    when the text ends mid-word. The engine is a deliberate
    approximation: it tracks the clause structure with a token scan
    rather than full parsing, so it degrades gracefully on partial or
    slightly wrong input — exactly what an interactive text box needs. *)

val suggest : Pb_sql.Database.t -> string -> string list
(** [suggest db prefix] — completions sorted alphabetically, keywords
    upper-case, identifiers lower-case. Examples:

    - [""] → [["SELECT"]]
    - ["SELECT "] → [["PACKAGE("]]
    - ["... FROM "] → table names
    - ["... WHERE r."] → columns of the FROM table, as [r.col]
    - ["... SUCH THAT "] → aggregate templates (COUNT, SUM, AVG, ...)
    - ["... SUCH THAT COUNT(x) "] → comparison operators
    - ["... SU"] → [["SUCH THAT"]] (prefix filtering)

    An unlexable prefix yields []. *)
