(** Natural-language rendering of PaQL queries — the "Natural language
    descriptions" panel of the PackageBuilder interface (Figure 1).

    The goal is readable, not generative, English: every constraint form
    the parser accepts has a deterministic phrasing, so the same query
    always describes itself the same way. *)

val describe_base : input_alias:string -> Pb_sql.Ast.expr -> string list
(** One sentence per conjunct of the WHERE clause, e.g.
    ["every r must have gluten equal to 'free'"]. *)

val describe_global : Pb_sql.Ast.expr -> string list
(** One sentence per conjunct of the SUCH THAT clause, e.g.
    ["the package must contain exactly 3 tuples";
     "the total of calories must be between 2000 and 2500"].
    Disjunctions render as a single "either ... or ..." sentence. *)

val describe_objective : (Pb_paql.Ast.direction * Pb_sql.Ast.expr) -> string
(** e.g. ["among valid packages, prefer the largest total of protein"]. *)

val describe_query : Pb_paql.Ast.t -> string
(** Full multi-line description: data source, base constraints, global
    constraints, objective, repetition policy. *)
