lib/explore/diverse.ml: Float Int List Option Pb_core Pb_paql Set
