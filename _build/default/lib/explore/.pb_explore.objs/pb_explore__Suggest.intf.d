lib/explore/suggest.mli: Pb_paql Pb_sql
