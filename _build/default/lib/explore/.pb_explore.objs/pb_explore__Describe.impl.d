lib/explore/describe.ml: Buffer List Pb_paql Pb_relation Pb_sql Printf String
