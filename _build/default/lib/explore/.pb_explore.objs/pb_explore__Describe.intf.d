lib/explore/describe.mli: Pb_paql Pb_sql
