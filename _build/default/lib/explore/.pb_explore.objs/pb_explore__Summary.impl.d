lib/explore/summary.ml: Array Buffer Float List Option Pb_core Pb_paql Pb_relation Pb_sql Pb_util Printf String
