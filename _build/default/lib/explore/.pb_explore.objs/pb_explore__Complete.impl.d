lib/explore/complete.ml: List Option Pb_relation Pb_sql Printf String
