lib/explore/session.mli: Pb_paql Pb_sql Suggest
