lib/explore/summary.mli: Pb_paql Pb_sql
