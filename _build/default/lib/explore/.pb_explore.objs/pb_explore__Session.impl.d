lib/explore/session.ml: Array Float List Pb_core Pb_lp Pb_paql Pb_relation Pb_sql Pb_util Printf Result String Suggest
