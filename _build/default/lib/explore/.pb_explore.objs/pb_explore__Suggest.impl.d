lib/explore/suggest.ml: Float Hashtbl List Option Pb_paql Pb_relation Pb_sql Pb_util Printf String
