lib/explore/template.ml: Buffer Describe List Pb_core Pb_paql Pb_sql Printf Summary
