lib/explore/diverse.mli: Pb_paql Pb_sql
