lib/explore/complete.mli: Pb_sql
