lib/explore/template.mli: Pb_paql Pb_sql
