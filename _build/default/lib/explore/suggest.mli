(** Constraint suggestion from interface gestures (§3.1).

    "As a user interacts with the template by highlighting elements in the
    sample package, PACKAGEBUILDER suggests constraints. For example, when
    the user selects a cell within the 'fats' column, the system proposes
    several constraints that would restrict the amount of fat in each
    meal, and objectives that would minimize the total amount of fat."

    Each suggestion carries the refined query, the PaQL fragment it adds,
    and a natural-language description, so a front end can show and apply
    them directly. *)

type highlight =
  | Cell of { row : int; column : string }
      (** one value inside the sample package (row index into the sample) *)
  | Column of string  (** a whole column *)
  | Row of int  (** a whole sample tuple *)

type kind = Base_constraint | Global_constraint | Objective

type suggestion = {
  kind : kind;
  paql_fragment : string;  (** e.g. ["r.fat <= 20"] or ["SUM(p.fat) <= 60"] *)
  description : string;  (** natural-language phrasing *)
  refined : Pb_paql.Ast.t;  (** the query with the suggestion applied *)
}

val suggest :
  Pb_paql.Ast.t -> sample:Pb_paql.Package.t -> highlight -> suggestion list
(** Suggestions for a gesture over the current sample package:

    - [Cell]: per-tuple bounds at the selected value (≤ v, ≥ v, = v for
      categorical values) as base constraints, plus total/average global
      bounds scaled from it, plus MIN/MAXIMIZE objectives on numeric
      columns;
    - [Column]: global SUM within ±10% of the sample's total, bounds on
      AVG at the sample's mean, and both objective directions;
    - [Row]: base constraints generalizing the tuple's categorical
      attributes (e.g. the cuisine of the highlighted meal).

    Suggestions that do not type-check against the sample's schema (e.g.
    SUM over a text column) are omitted. Raises [Failure] on an unknown
    column. *)

val apply_base : Pb_paql.Ast.t -> Pb_sql.Ast.expr -> Pb_paql.Ast.t
(** AND a predicate onto the WHERE clause. *)

val apply_global : Pb_paql.Ast.t -> Pb_sql.Ast.expr -> Pb_paql.Ast.t
(** AND a predicate onto the SUCH THAT clause. *)

val apply_objective :
  Pb_paql.Ast.t -> Pb_paql.Ast.direction * Pb_sql.Ast.expr -> Pb_paql.Ast.t
(** Replace the objective. *)
