lib/shell/repl.ml: Buffer List Pb_core Pb_explore Pb_paql Pb_relation Pb_sql Printf String
