lib/shell/repl.mli: Pb_sql
