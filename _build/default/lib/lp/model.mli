(** Mixed-integer linear program models.

    This plays the role CPLEX's model API plays in the paper: the PaQL
    translator builds one decision variable per candidate tuple (binary, or
    integer in [0, k] under REPEAT k) and one linear constraint per global
    constraint, then hands the model to {!Simplex}/{!Milp}. *)

type sense = Le | Ge | Eq

type linear = (float * int) list
(** Sum of [coefficient * variable] terms; variables are indices returned
    by {!add_var}. Duplicate variables are allowed and are summed. *)

type objective = Maximize of linear | Minimize of linear

type constr = { name : string; terms : linear; sense : sense; rhs : float }

type t

val create : unit -> t

val add_var :
  t -> ?integer:bool -> ?lower:float -> ?upper:float -> string -> int
(** New variable index. Defaults: continuous, bounds [0, +inf). *)

val num_vars : t -> int
val var_name : t -> int -> string
val bounds : t -> int -> float * float
val set_bounds : t -> int -> float -> float -> unit
(** Used by branch & bound to tighten a variable on one branch. *)

val is_integer : t -> int -> bool
val add_constr : t -> ?name:string -> linear -> sense -> float -> unit
val constraints : t -> constr list
val set_objective : t -> objective -> unit
val objective : t -> objective

val objective_terms : t -> float array
(** Dense maximization coefficients (negated for [Minimize]). *)

val objective_value : t -> float array -> float
(** Evaluate the {e original} objective (not the internal maximization
    form) at a point. *)

val check_feasible : ?eps:float -> t -> float array -> bool
(** Bounds + constraints check, with [eps] absolute slack (default 1e-6).
    Integrality is {e not} checked here; see {!check_integral}. *)

val check_integral : ?eps:float -> t -> float array -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable LP-format-style dump. *)
