lib/lp/model.ml: Array Float Format List Printf String
