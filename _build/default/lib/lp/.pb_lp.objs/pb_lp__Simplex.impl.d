lib/lp/simplex.ml: Array Float List Model Option Printf
