lib/lp/lp_format.mli: Model
