lib/lp/milp.mli: Model
