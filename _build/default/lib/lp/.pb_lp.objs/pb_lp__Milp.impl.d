lib/lp/milp.ml: Array Float List Model Presolve Printf Simplex Unix
