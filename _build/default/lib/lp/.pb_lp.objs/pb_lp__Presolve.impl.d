lib/lp/presolve.ml: Array Float Hashtbl List Model Option
