lib/lp/presolve.mli: Model
