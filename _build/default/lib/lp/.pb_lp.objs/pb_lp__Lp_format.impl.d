lib/lp/lp_format.ml: Array Buffer Float Fun Hashtbl List Model Printf String
