(** CPLEX-LP-format serialization of models.

    PackageBuilder's EXPLAIN path and the test suite use this to inspect
    translated PaQL queries; the format is accepted by standard solvers
    (CPLEX, Gurobi, GLPK, CBC), so models can also be exported for
    cross-checking against an external solver. *)

val to_string : Model.t -> string
(** Render with [Maximize/Subject To/Bounds/Generals/End] sections.
    Variable names are sanitized (characters outside [A-Za-z0-9_] become
    [_]) and uniquified by index when sanitization collides. *)

val write_file : string -> Model.t -> unit
