let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      then c
      else '_')
    name

let var_names model =
  let n = Model.num_vars model in
  let seen = Hashtbl.create n in
  Array.init n (fun i ->
      let base = sanitize (Model.var_name model i) in
      let base = if base = "" then Printf.sprintf "v%d" i else base in
      if Hashtbl.mem seen base then begin
        let fresh = Printf.sprintf "%s_%d" base i in
        Hashtbl.add seen fresh ();
        fresh
      end
      else begin
        Hashtbl.add seen base ();
        base
      end)

let linear_to_string names terms =
  match terms with
  | [] -> "0"
  | _ ->
      String.concat " "
        (List.mapi
           (fun i (c, v) ->
             let sign, mag =
               if c >= 0.0 then ((if i = 0 then "" else "+ "), c)
               else ("- ", Float.abs c)
             in
             Printf.sprintf "%s%g %s" sign mag names.(v))
           terms)

let to_string model =
  let names = var_names model in
  let buf = Buffer.create 1024 in
  let objective_terms, maximize =
    match Model.objective model with
    | Model.Maximize terms -> (terms, true)
    | Model.Minimize terms -> (terms, false)
  in
  Buffer.add_string buf (if maximize then "Maximize\n" else "Minimize\n");
  Buffer.add_string buf (" obj: " ^ linear_to_string names objective_terms ^ "\n");
  Buffer.add_string buf "Subject To\n";
  List.iter
    (fun (c : Model.constr) ->
      let op =
        match c.sense with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "="
      in
      Buffer.add_string buf
        (Printf.sprintf " %s: %s %s %g\n" (sanitize c.name)
           (linear_to_string names c.terms)
           op c.rhs))
    (Model.constraints model);
  Buffer.add_string buf "Bounds\n";
  for i = 0 to Model.num_vars model - 1 do
    let lo, hi = Model.bounds model i in
    let lo_s = if lo = neg_infinity then "-inf" else Printf.sprintf "%g" lo in
    let hi_s = if hi = infinity then "+inf" else Printf.sprintf "%g" hi in
    Buffer.add_string buf
      (Printf.sprintf " %s <= %s <= %s\n" lo_s names.(i) hi_s)
  done;
  let integers =
    List.filter
      (fun i -> Model.is_integer model i)
      (List.init (Model.num_vars model) Fun.id)
  in
  if integers <> [] then begin
    Buffer.add_string buf "Generals\n ";
    Buffer.add_string buf
      (String.concat " " (List.map (fun i -> names.(i)) integers));
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_file path model =
  let oc = open_out path in
  output_string oc (to_string model);
  close_out oc
