type sense = Le | Ge | Eq

type linear = (float * int) list

type objective = Maximize of linear | Minimize of linear

type constr = { name : string; terms : linear; sense : sense; rhs : float }

type var_info = {
  vname : string;
  mutable lower : float;
  mutable upper : float;
  vinteger : bool;
}

type t = {
  mutable vars : var_info array;
  mutable nvars : int;
  mutable constrs : constr list;  (* reversed *)
  mutable obj : objective;
}

let create () =
  { vars = Array.make 16 { vname = ""; lower = 0.; upper = 0.; vinteger = false };
    nvars = 0;
    constrs = [];
    obj = Maximize [] }

let grow t =
  if t.nvars = Array.length t.vars then begin
    let bigger =
      Array.make (2 * Array.length t.vars)
        { vname = ""; lower = 0.; upper = 0.; vinteger = false }
    in
    Array.blit t.vars 0 bigger 0 t.nvars;
    t.vars <- bigger
  end

let add_var t ?(integer = false) ?(lower = 0.0) ?(upper = infinity) name =
  if lower > upper then
    invalid_arg
      (Printf.sprintf "Model.add_var %s: lower %g > upper %g" name lower upper);
  grow t;
  let idx = t.nvars in
  t.vars.(idx) <- { vname = name; lower; upper; vinteger = integer };
  t.nvars <- idx + 1;
  idx

let num_vars t = t.nvars
let var_name t i = t.vars.(i).vname
let bounds t i = (t.vars.(i).lower, t.vars.(i).upper)

let set_bounds t i lo hi =
  t.vars.(i).lower <- lo;
  t.vars.(i).upper <- hi

let is_integer t i = t.vars.(i).vinteger

let add_constr t ?name terms sense rhs =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "c%d" (List.length t.constrs)
  in
  t.constrs <- { name; terms; sense; rhs } :: t.constrs

let constraints t = List.rev t.constrs
let set_objective t obj = t.obj <- obj
let objective t = t.obj

let objective_terms t =
  let dense = Array.make t.nvars 0.0 in
  let fill sign terms =
    List.iter (fun (c, v) -> dense.(v) <- dense.(v) +. (sign *. c)) terms
  in
  (match t.obj with
  | Maximize terms -> fill 1.0 terms
  | Minimize terms -> fill (-1.0) terms);
  dense

let eval_linear terms x =
  List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) 0.0 terms

let objective_value t x =
  match t.obj with
  | Maximize terms -> eval_linear terms x
  | Minimize terms -> eval_linear terms x

let check_feasible ?(eps = 1e-6) t x =
  Array.length x = t.nvars
  && (let ok = ref true in
      for i = 0 to t.nvars - 1 do
        let v = t.vars.(i) in
        if x.(i) < v.lower -. eps || x.(i) > v.upper +. eps then ok := false
      done;
      !ok)
  && List.for_all
       (fun c ->
         let lhs = eval_linear c.terms x in
         match c.sense with
         | Le -> lhs <= c.rhs +. eps
         | Ge -> lhs >= c.rhs -. eps
         | Eq -> Float.abs (lhs -. c.rhs) <= eps)
       t.constrs

let check_integral ?(eps = 1e-6) t x =
  let ok = ref true in
  for i = 0 to t.nvars - 1 do
    if t.vars.(i).vinteger && Float.abs (x.(i) -. Float.round x.(i)) > eps
    then ok := false
  done;
  !ok

let pp ppf t =
  let linear_to_string terms =
    String.concat " + "
      (List.map
         (fun (c, v) -> Printf.sprintf "%g*%s" c t.vars.(v).vname)
         terms)
  in
  (match t.obj with
  | Maximize terms -> Format.fprintf ppf "maximize %s@." (linear_to_string terms)
  | Minimize terms -> Format.fprintf ppf "minimize %s@." (linear_to_string terms));
  Format.fprintf ppf "subject to@.";
  List.iter
    (fun c ->
      let op = match c.sense with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf ppf "  %s: %s %s %g@." c.name (linear_to_string c.terms)
        op c.rhs)
    (constraints t);
  Format.fprintf ppf "bounds@.";
  for i = 0 to t.nvars - 1 do
    let v = t.vars.(i) in
    Format.fprintf ppf "  %g <= %s <= %g%s@." v.lower v.vname v.upper
      (if v.vinteger then " (int)" else "")
  done
