(** MILP presolve: cheap, solution-preserving model reductions applied
    before branch & bound.

    Three classic rules run to a fixpoint:

    - {b activity-based row analysis}: a row whose worst-case activity
      already satisfies it is dropped; one whose best-case activity cannot
      reach it proves infeasibility;
    - {b singleton rows} become variable-bound tightenings and are
      dropped;
    - {b integer bound rounding}: fractional bounds on integer variables
      tighten to the nearest lattice point (which may itself expose
      infeasibility).

    Variables are never eliminated, so a solution of the reduced model is
    a solution of the original with the same vector; only rows and bounds
    change. The PaQL translations benefit directly: cardinality windows
    become singleton-free but the per-tuple forbid rows (x_i <= 0) from
    MIN/MAX constraints all fold into bounds. *)

type outcome =
  | Reduced of {
      model : Model.t;  (** fresh model; same variable indexing *)
      rows_dropped : int;
      bounds_tightened : int;
    }
  | Proven_infeasible

val presolve : ?max_passes:int -> Model.t -> outcome
(** [max_passes] defaults to 10. The input model is not modified. *)
