type outcome =
  | Reduced of {
      model : Model.t;
      rows_dropped : int;
      bounds_tightened : int;
    }
  | Proven_infeasible

let eps = 1e-9

exception Infeasible_found

(* Sum duplicate variables within a row up front so activity bounds and
   singleton detection see one coefficient per variable. *)
let normalize_terms terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, v) ->
      Hashtbl.replace tbl v
        (c +. Option.value (Hashtbl.find_opt tbl v) ~default:0.0))
    terms;
  Hashtbl.fold
    (fun v c acc -> if c = 0.0 then acc else (c, v) :: acc)
    tbl []

let presolve ?(max_passes = 10) model =
  let n = Model.num_vars model in
  let lower = Array.make n 0.0 and upper = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let lo, hi = Model.bounds model i in
    lower.(i) <- lo;
    upper.(i) <- hi
  done;
  let rows =
    ref
      (List.map
         (fun (c : Model.constr) -> { c with Model.terms = normalize_terms c.terms })
         (Model.constraints model))
  in
  let rows_dropped = ref 0 and bounds_tightened = ref 0 in
  let tighten v lo hi =
    let lo = Float.max lo lower.(v) and hi = Float.min hi upper.(v) in
    let lo, hi =
      if Model.is_integer model v then (Float.ceil (lo -. eps), Float.floor (hi +. eps))
      else (lo, hi)
    in
    if lo > hi +. eps then raise Infeasible_found;
    if lo > lower.(v) +. eps || hi < upper.(v) -. eps then incr bounds_tightened;
    lower.(v) <- Float.max lower.(v) lo;
    upper.(v) <- Float.min upper.(v) hi
  in
  let activity_bounds terms =
    List.fold_left
      (fun (amin, amax) (c, v) ->
        if c >= 0.0 then
          (amin +. (c *. lower.(v)), amax +. (c *. upper.(v)))
        else (amin +. (c *. upper.(v)), amax +. (c *. lower.(v))))
      (0.0, 0.0) terms
  in
  let process_row (c : Model.constr) =
    match c.terms with
    | [] ->
        (* Constant row: decide it now. *)
        let ok =
          match c.sense with
          | Model.Le -> 0.0 <= c.rhs +. eps
          | Model.Ge -> 0.0 >= c.rhs -. eps
          | Model.Eq -> Float.abs c.rhs <= eps
        in
        if ok then (incr rows_dropped; None) else raise Infeasible_found
    | [ (coef, v) ] ->
        (* Singleton: becomes a bound. *)
        incr rows_dropped;
        (match (c.sense, coef > 0.0) with
        | Model.Le, true -> tighten v neg_infinity (c.rhs /. coef)
        | Model.Le, false -> tighten v (c.rhs /. coef) infinity
        | Model.Ge, true -> tighten v (c.rhs /. coef) infinity
        | Model.Ge, false -> tighten v neg_infinity (c.rhs /. coef)
        | Model.Eq, _ -> tighten v (c.rhs /. coef) (c.rhs /. coef));
        None
    | terms -> (
        let amin, amax = activity_bounds terms in
        match c.sense with
        | Model.Le ->
            if amin > c.rhs +. eps then raise Infeasible_found
            else if amax <= c.rhs +. eps then (incr rows_dropped; None)
            else Some c
        | Model.Ge ->
            if amax < c.rhs -. eps then raise Infeasible_found
            else if amin >= c.rhs -. eps then (incr rows_dropped; None)
            else Some c
        | Model.Eq ->
            if amin > c.rhs +. eps || amax < c.rhs -. eps then
              raise Infeasible_found
            else if
              Float.abs (amin -. c.rhs) <= eps && Float.abs (amax -. c.rhs) <= eps
            then (incr rows_dropped; None)
            else Some c)
  in
  match
    let pass = ref 0 and changed = ref true in
    while !changed && !pass < max_passes do
      incr pass;
      let before = (!rows_dropped, !bounds_tightened) in
      rows := List.filter_map process_row !rows;
      changed := before <> (!rows_dropped, !bounds_tightened)
    done
  with
  | () ->
      let reduced = Model.create () in
      for i = 0 to n - 1 do
        ignore
          (Model.add_var reduced
             ~integer:(Model.is_integer model i)
             ~lower:lower.(i) ~upper:upper.(i) (Model.var_name model i))
      done;
      List.iter
        (fun (c : Model.constr) ->
          Model.add_constr reduced ~name:c.name c.terms c.sense c.rhs)
        !rows;
      Model.set_objective reduced (Model.objective model);
      Reduced
        {
          model = reduced;
          rows_dropped = !rows_dropped;
          bounds_tightened = !bounds_tightened;
        }
  | exception Infeasible_found -> Proven_infeasible
