(** Two-phase primal simplex for linear programs with bounded variables.

    The solver keeps the tableau at [m] rows (one per constraint):
    variable bounds are handled by the bounded-variable pivot rules rather
    than by extra rows, which is what makes PaQL relaxations with
    thousands of binary columns and a handful of global constraints cheap
    to solve. Dantzig pricing with a Bland's-rule fallback guards against
    cycling. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit

type solution = {
  status : status;
  x : float array;       (** structural variable values (model order) *)
  objective : float;     (** original-sense objective value at [x] *)
  iterations : int;      (** total pivots across both phases *)
}

val solve : ?max_iterations:int -> Model.t -> solution
(** Solve the LP relaxation of [model] (integrality markers are ignored).
    [max_iterations] defaults to [200 * (m + n) + 1000].

    Raises [Invalid_argument] if some variable has no finite bound on
    either side (the package translator never produces such variables). *)
