module Prng = Pb_util.Prng
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation
module Value = Pb_relation.Value

let dish_bases =
  [|
    "chicken"; "tofu"; "salmon"; "quinoa"; "lentil"; "beef"; "mushroom";
    "spinach"; "chickpea"; "turkey"; "egg"; "rice"; "pasta"; "kale";
    "shrimp"; "pork"; "bean"; "avocado"; "oat"; "yogurt";
  |]

let dish_styles =
  [|
    "bowl"; "salad"; "stir-fry"; "curry"; "soup"; "wrap"; "bake"; "stew";
    "skillet"; "roast"; "tacos"; "pilaf"; "omelette"; "chili"; "gratin";
  |]

let cuisines =
  [| "italian"; "mexican"; "indian"; "thai"; "greek"; "japanese"; "american"; "moroccan" |]

let int_col name = { Schema.name; ty = Value.T_int }
let float_col name = { Schema.name; ty = Value.T_float }
let text_col name = { Schema.name; ty = Value.T_str }

let recipes ?(seed = 1) ~n () =
  let rng = Prng.create seed in
  let schema =
    Schema.make
      [
        int_col "id"; text_col "name"; text_col "cuisine"; text_col "gluten";
        int_col "calories"; int_col "protein"; int_col "fat"; int_col "carbs";
        int_col "sugar"; float_col "cost"; float_col "rating";
        int_col "prep_minutes";
      ]
  in
  let rows =
    List.init n (fun id ->
        let name =
          Printf.sprintf "%s %s #%d" (Prng.choice rng dish_bases)
            (Prng.choice rng dish_styles) (id + 1)
        in
        let protein = Prng.int_in rng 4 60 in
        let fat = Prng.int_in rng 2 50 in
        let carbs = Prng.int_in rng 5 120 in
        let sugar = min carbs (Prng.int_in rng 0 45) in
        (* 4 kcal/g protein and carbs, 9 kcal/g fat, plus kitchen noise. *)
        let calories =
          max 150
            ((4 * protein) + (4 * carbs) + (9 * fat)
            + Prng.int_in rng (-60) 120)
        in
        let gluten =
          (* Grain-heavy dishes are more likely to contain gluten. *)
          if carbs > 60 then if Prng.int rng 100 < 75 then "full" else "free"
          else if Prng.int rng 100 < 35 then "full"
          else "free"
        in
        let cost =
          Float.round
            ((2.0 +. Prng.float rng 16.0 +. (float_of_int protein /. 10.0))
            *. 100.0)
          /. 100.0
        in
        let rating =
          Float.round ((1.0 +. Prng.float rng 4.0) *. 10.0) /. 10.0
        in
        [|
          Value.Int (id + 1); Value.Str name;
          Value.Str (Prng.choice rng cuisines); Value.Str gluten;
          Value.Int calories; Value.Int protein; Value.Int fat;
          Value.Int carbs; Value.Int sugar; Value.Float cost;
          Value.Float rating; Value.Int (Prng.int_in rng 5 90);
        |])
  in
  Relation.create schema rows

let destinations_pool =
  [|
    "maui"; "cancun"; "bali"; "fiji"; "phuket"; "barbados"; "mauritius";
    "seychelles"; "maldives"; "tulum"; "kauai"; "zanzibar"; "santorini";
    "ibiza"; "aruba"; "bora-bora";
  |]

let airlines = [| "transpacific"; "skyway"; "bluebird"; "meridian"; "coastal" |]
let hotel_brands = [| "palms"; "lagoon"; "vista"; "coral"; "breeze"; "dunes" |]
let car_firms = [| "swift"; "island-wheels"; "sunny"; "atlas" |]

let travel_items ?(seed = 2) ~n_destinations () =
  let rng = Prng.create seed in
  let schema =
    Schema.make
      [
        int_col "id"; text_col "kind"; text_col "name"; text_col "destination";
        float_col "price"; int_col "is_flight"; int_col "is_hotel";
        int_col "is_car"; float_col "beach_distance"; float_col "rating";
      ]
  in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let money x = Float.round (x *. 100.0) /. 100.0 in
  let rows = ref [] in
  let emit row = rows := row :: !rows in
  for d = 0 to n_destinations - 1 do
    let dest = destinations_pool.(d mod Array.length destinations_pool) in
    let dest =
      if d < Array.length destinations_pool then dest
      else Printf.sprintf "%s-%d" dest (d / Array.length destinations_pool)
    in
    let base_fare = 350.0 +. Prng.float rng 900.0 in
    for _ = 1 to Prng.int_in rng 3 6 do
      emit
        [|
          Value.Int (fresh_id ()); Value.Str "flight";
          Value.Str (Printf.sprintf "%s air to %s" (Prng.choice rng airlines) dest);
          Value.Str dest;
          Value.Float (money (base_fare +. Prng.float rng 400.0));
          Value.Int 1; Value.Int 0; Value.Int 0; Value.Float 0.0;
          Value.Float (Float.round ((2.0 +. Prng.float rng 3.0) *. 10.0) /. 10.0);
        |]
    done;
    for _ = 1 to Prng.int_in rng 4 8 do
      let beach = Prng.float rng 12.0 in
      (* Closer to the beach means pricier: anti-correlation drives the
         paper's rental-car trade-off. *)
      let nightly = 80.0 +. Prng.float rng 120.0 +. (300.0 /. (1.0 +. beach)) in
      emit
        [|
          Value.Int (fresh_id ()); Value.Str "hotel";
          Value.Str (Printf.sprintf "%s %s resort" dest (Prng.choice rng hotel_brands));
          Value.Str dest;
          Value.Float (money (nightly *. 5.0));  (* five-night stay *)
          Value.Int 0; Value.Int 1; Value.Int 0;
          Value.Float (Float.round (beach *. 10.0) /. 10.0);
          Value.Float (Float.round ((2.5 +. Prng.float rng 2.5) *. 10.0) /. 10.0);
        |]
    done;
    for _ = 1 to Prng.int_in rng 2 4 do
      emit
        [|
          Value.Int (fresh_id ()); Value.Str "car";
          Value.Str (Printf.sprintf "%s rental (%s)" (Prng.choice rng car_firms) dest);
          Value.Str dest;
          Value.Float (money (120.0 +. Prng.float rng 280.0));
          Value.Int 0; Value.Int 0; Value.Int 1; Value.Float 0.0;
          Value.Float (Float.round ((3.0 +. Prng.float rng 2.0) *. 10.0) /. 10.0);
        |]
    done
  done;
  Relation.create schema (List.rev !rows)

let sectors =
  [| "tech"; "health"; "energy"; "finance"; "consumer"; "industrial"; "utilities" |]

let stocks ?(seed = 3) ~n () =
  let rng = Prng.create seed in
  let schema =
    Schema.make
      [
        int_col "id"; text_col "ticker"; text_col "sector"; float_col "price";
        float_col "expected_return"; float_col "risk"; int_col "is_tech";
        text_col "horizon"; int_col "is_short"; int_col "is_long";
      ]
  in
  let rows =
    List.init n (fun id ->
        let sector = Prng.choice rng sectors in
        let is_tech = if sector = "tech" then 1 else 0 in
        let ticker =
          String.init 4 (fun _ -> Char.chr (Char.code 'A' + Prng.int rng 26))
        in
        let risk =
          let base = if is_tech = 1 then 0.35 else 0.15 in
          Float.round ((base +. Prng.float rng 0.5) *. 1000.0) /. 1000.0
        in
        (* Return scales with risk (plus noise); tech skews higher. *)
        let expected_return =
          Float.round
            ((risk *. 18.0) +. Prng.gaussian rng ~mean:2.0 ~stddev:4.0
            +. (if is_tech = 1 then 2.0 else 0.0))
          /. 1.0
        in
        let horizon = if Prng.bool rng then "short" else "long" in
        [|
          Value.Int (id + 1); Value.Str ticker; Value.Str sector;
          (* Price per 100-share lot, so a ~$50K budget binds at the
             portfolio sizes the scenario query asks for. *)
          Value.Float (Float.round ((100.0 +. Prng.float rng 9900.0) *. 100.0) /. 100.0);
          Value.Float expected_return; Value.Float risk; Value.Int is_tech;
          Value.Str horizon;
          Value.Int (if horizon = "short" then 1 else 0);
          Value.Int (if horizon = "long" then 1 else 0);
        |])
  in
  Relation.create schema rows

let departments = [| "cs"; "math"; "bio"; "econ"; "art"; "hist"; "phys" |]

let core_chain = [| "cs101"; "cs201"; "cs301"; "cs401" |]

let courses ?(seed = 4) ~n_electives () =
  let rng = Prng.create seed in
  let chain_cols =
    Array.to_list
      (Array.map (fun code -> int_col ("is_" ^ code)) core_chain)
  in
  let schema =
    Schema.make
      ([
         int_col "id"; text_col "code"; text_col "dept"; int_col "credits";
         int_col "level"; float_col "rating"; int_col "hours";
       ]
      @ chain_cols)
  in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let mk_row ~code ~dept ~credits ~level ~chain_index =
    Array.of_list
      ([
         Value.Int (fresh_id ()); Value.Str code; Value.Str dept;
         Value.Int credits; Value.Int level;
         Value.Float (Float.round ((2.0 +. Prng.float rng 3.0) *. 10.0) /. 10.0);
         Value.Int (Prng.int_in rng 3 14);
       ]
      @ List.init (Array.length core_chain) (fun j ->
            Value.Int (if Some j = chain_index then 1 else 0)))
  in
  let chain_rows =
    List.init (Array.length core_chain) (fun j ->
        mk_row ~code:core_chain.(j) ~dept:"cs" ~credits:4
          ~level:((j + 1) * 100)
          ~chain_index:(Some j))
  in
  let elective_rows =
    List.init n_electives (fun i ->
        let dept = Prng.choice rng departments in
        let level = 100 * Prng.int_in rng 1 4 in
        mk_row
          ~code:(Printf.sprintf "%s%d" dept (level + i))
          ~dept
          ~credits:(Prng.int_in rng 2 5)
          ~level ~chain_index:None)
  in
  Relation.create schema (chain_rows @ elective_rows)

let install ?(seed = 7) ?(recipes_n = 500) ?(destinations = 8) ?(stocks_n = 200)
    ?(electives = 40) db =
  Pb_sql.Database.put db "recipes" (recipes ~seed ~n:recipes_n ());
  Pb_sql.Database.put db "travel_items"
    (travel_items ~seed:(seed + 1) ~n_destinations:destinations ());
  Pb_sql.Database.put db "stocks" (stocks ~seed:(seed + 2) ~n:stocks_n ());
  Pb_sql.Database.put db "courses"
    (courses ~seed:(seed + 3) ~n_electives:electives ())
