lib/workload/workload.ml: Array Char Float List Pb_relation Pb_sql Pb_util Printf String
