lib/workload/workload.mli: Pb_relation Pb_sql
