(** Synthetic data sets for the paper's three motivating scenarios.

    The demo ran on "a rich recipe data set scrapped from online recipe
    and nutrition websites", which is not available; these generators
    produce deterministic substitutes (fixed seed ⇒ identical tables)
    whose marginals match published nutrition-facts ranges, so the
    experiments exercise the same constraint structure at any scale. *)

val recipes : ?seed:int -> n:int -> unit -> Pb_relation.Relation.t
(** Recipe table with columns: [id INT], [name TEXT], [cuisine TEXT],
    [gluten TEXT] ('free' | 'full'), [calories INT] (roughly 150–1200),
    [protein INT] (g), [fat INT] (g), [carbs INT] (g), [sugar INT] (g),
    [cost FLOAT] ($), [rating FLOAT] (1–5), [prep_minutes INT].
    Calories correlate with the macronutrients (4/4/9 kcal per gram plus
    noise), as in real nutrition data. *)

val travel_items : ?seed:int -> n_destinations:int -> unit -> Pb_relation.Relation.t
(** Vacation-planner table mixing flights, hotels and car rentals, one
    row per bookable item: [id], [kind] ('flight'|'hotel'|'car'), [name],
    [destination TEXT], [price FLOAT], [is_flight INT], [is_hotel INT],
    [is_car INT] (0/1 indicator columns — PaQL global constraints use
    them to require exactly one of each kind), [beach_distance FLOAT]
    (km, hotels; 0 for others), [rating FLOAT]. Each destination gets
    3–6 flights, 4–8 hotels, 2–4 cars; hotel prices anti-correlate with
    beach distance so the paper's "walking distance unless the budget
    fits a rental car" trade-off is realizable. *)

val stocks : ?seed:int -> n:int -> unit -> Pb_relation.Relation.t
(** Investment-portfolio table: [id], [ticker TEXT], [sector TEXT],
    [price FLOAT] (per 100-share lot, ~100–10000, so scenario budgets in
    the tens of thousands bind), [expected_return FLOAT] (annual %, can be
    negative), [risk FLOAT] (volatility 0–1), [is_tech INT] (0/1),
    [horizon TEXT] ('short'|'long'), [is_short INT], [is_long INT].
    Tech stocks have higher expected return and risk. *)

val courses : ?seed:int -> n_electives:int -> unit -> Pb_relation.Relation.t
(** Course-catalog table for the §6 CourseRank comparison ("[PaQL] can
    easily express pre-requisite constraints typical of course package
    recommendation systems"): [id], [code TEXT], [dept TEXT],
    [credits INT] (2–5), [level INT] (100–400), [rating FLOAT] (1–5),
    [hours INT] (weekly workload), and 0/1 indicator columns
    [is_cs101], [is_cs201], [is_cs301], [is_cs401] for a four-course core
    chain where each course presupposes the previous one. A prerequisite
    then becomes the linear global constraint
    [SUM(P.is_cs201) <= SUM(P.is_cs101)], etc. The table holds the chain
    plus [n_electives] electives (all indicator columns 0). *)

val install :
  ?seed:int ->
  ?recipes_n:int ->
  ?destinations:int ->
  ?stocks_n:int ->
  ?electives:int ->
  Pb_sql.Database.t ->
  unit
(** Create tables [recipes], [travel_items], [stocks] and [courses]
    (defaults: 500 recipes, 8 destinations, 200 stocks, 40 electives). *)
