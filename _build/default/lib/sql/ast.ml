(* Abstract syntax shared by the SQL engine and (via reuse of [expr]) the
   PaQL front end. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type agg_func = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Lit of Pb_relation.Value.t
  | Col of string  (* possibly qualified, lower-cased *)
  | Unary_minus of expr
  | Not of expr
  | Binop of binop * expr * expr
  | Between of expr * expr * expr  (* e BETWEEN lo AND hi *)
  | In_list of expr * expr list * bool  (* negated? *)
  | In_query of expr * select * bool
  | Exists of select
  | Is_null of expr * bool  (* IS NULL / IS NOT NULL *)
  | Like of expr * string * bool
  | Agg of agg_func * expr option  (* Count_star carries None *)
  | Func of string * expr list  (* scalar functions: abs, lower, upper, ... *)
  | Case of (expr * expr) list * expr option
      (* CASE WHEN c THEN e ... [ELSE e] END; no ELSE yields NULL *)

and select_item = Star_item | Expr_item of expr * string option

and table_ref = { rel_name : string; alias : string option }

and order_dir = Asc | Desc

and set_op = Union | Union_all | Intersect | Except

and select = {
  distinct : bool;
  items : select_item list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
  compound : (set_op * select) list;
      (* set operations applied left-to-right to this select's result *)
}

type column_def = { col_name : string; col_ty : Pb_relation.Value.ty }

type statement =
  | Select_stmt of select
  | Create_table of string * column_def list
  | Create_index of { table : string; column : string }
  | Insert of string * string list option * expr list list
  | Delete of string * expr option
  | Update of string * (string * expr) list * expr option
  | Drop_table of string

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let agg_to_string = function
  | Count_star | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

(* Precedence levels used by both the parser and the pretty-printer so
   that printing then reparsing yields the same tree. *)
let binop_precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5

let rec expr_to_string_prec prec e =
  let wrap p s = if p < prec then "(" ^ s ^ ")" else s in
  match e with
  | Lit (Pb_relation.Value.Str s) -> "'" ^ s ^ "'"
  | Lit v -> Pb_relation.Value.to_string v
  | Col c -> c
  | Unary_minus e -> "-" ^ expr_to_string_prec 6 e
  | Not e -> wrap 2 ("NOT " ^ expr_to_string_prec 3 e)
  | Binop (op, a, b) ->
      let p = binop_precedence op in
      wrap p
        (expr_to_string_prec p a ^ " " ^ binop_to_string op ^ " "
        ^ expr_to_string_prec (p + 1) b)
  | Between (e, lo, hi) ->
      wrap 3
        (expr_to_string_prec 4 e ^ " BETWEEN " ^ expr_to_string_prec 4 lo
       ^ " AND " ^ expr_to_string_prec 4 hi)
  | In_list (e, es, neg) ->
      wrap 3
        (expr_to_string_prec 4 e
        ^ (if neg then " NOT IN (" else " IN (")
        ^ String.concat ", " (List.map (expr_to_string_prec 0) es)
        ^ ")")
  | In_query (e, q, neg) ->
      wrap 3
        (expr_to_string_prec 4 e
        ^ (if neg then " NOT IN (" else " IN (")
        ^ select_to_string q ^ ")")
  | Exists q -> "EXISTS (" ^ select_to_string q ^ ")"
  | Is_null (e, neg) ->
      wrap 3
        (expr_to_string_prec 4 e ^ if neg then " IS NOT NULL" else " IS NULL")
  | Like (e, pat, neg) ->
      wrap 3
        (expr_to_string_prec 4 e
        ^ (if neg then " NOT LIKE '" else " LIKE '")
        ^ pat ^ "'")
  | Agg (Count_star, _) -> "COUNT(*)"
  | Agg (f, Some e) -> agg_to_string f ^ "(" ^ expr_to_string_prec 0 e ^ ")"
  | Agg (f, None) -> agg_to_string f ^ "()"
  | Func (name, args) ->
      String.uppercase_ascii name
      ^ "("
      ^ String.concat ", " (List.map (expr_to_string_prec 0) args)
      ^ ")"
  | Case (branches, default) ->
      let branch (c, e) =
        "WHEN " ^ expr_to_string_prec 0 c ^ " THEN " ^ expr_to_string_prec 0 e
      in
      "CASE "
      ^ String.concat " " (List.map branch branches)
      ^ (match default with
        | Some e -> " ELSE " ^ expr_to_string_prec 0 e
        | None -> "")
      ^ " END"

and expr_to_string e = expr_to_string_prec 0 e

and select_item_to_string = function
  | Star_item -> "*"
  | Expr_item (e, None) -> expr_to_string e
  | Expr_item (e, Some a) -> expr_to_string e ^ " AS " ^ a

and table_ref_to_string { rel_name; alias } =
  match alias with None -> rel_name | Some a -> rel_name ^ " " ^ a

and select_to_string q =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if q.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map select_item_to_string q.items));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", " (List.map table_ref_to_string q.from));
  (match q.where with
  | Some e -> Buffer.add_string buf (" WHERE " ^ expr_to_string e)
  | None -> ());
  (match q.group_by with
  | [] -> ()
  | es ->
      Buffer.add_string buf
        (" GROUP BY " ^ String.concat ", " (List.map expr_to_string es)));
  (match q.having with
  | Some e -> Buffer.add_string buf (" HAVING " ^ expr_to_string e)
  | None -> ());
  (match q.order_by with
  | [] -> ()
  | es ->
      let item (e, d) =
        expr_to_string e ^ match d with Asc -> " ASC" | Desc -> " DESC"
      in
      Buffer.add_string buf
        (" ORDER BY " ^ String.concat ", " (List.map item es)));
  (match q.limit with
  | Some k -> Buffer.add_string buf (" LIMIT " ^ string_of_int k)
  | None -> ());
  (match q.offset with
  | Some k -> Buffer.add_string buf (" OFFSET " ^ string_of_int k)
  | None -> ());
  List.iter
    (fun (op, rhs) ->
      let op_s =
        match op with
        | Union -> "UNION"
        | Union_all -> "UNION ALL"
        | Intersect -> "INTERSECT"
        | Except -> "EXCEPT"
      in
      Buffer.add_string buf (" " ^ op_s ^ " " ^ select_to_string rhs))
    q.compound;
  Buffer.contents buf

let statement_to_string = function
  | Select_stmt q -> select_to_string q
  | Create_table (name, cols) ->
      let col c =
        c.col_name ^ " " ^ Pb_relation.Value.ty_to_string c.col_ty
      in
      "CREATE TABLE " ^ name ^ " ("
      ^ String.concat ", " (List.map col cols)
      ^ ")"
  | Create_index { table; column } ->
      "CREATE INDEX ON " ^ table ^ " (" ^ column ^ ")"
  | Insert (name, cols, rows) ->
      let cols_s =
        match cols with
        | None -> ""
        | Some cs -> " (" ^ String.concat ", " cs ^ ")"
      in
      let row r =
        "(" ^ String.concat ", " (List.map expr_to_string r) ^ ")"
      in
      "INSERT INTO " ^ name ^ cols_s ^ " VALUES "
      ^ String.concat ", " (List.map row rows)
  | Delete (name, where) ->
      "DELETE FROM " ^ name
      ^ (match where with
        | Some e -> " WHERE " ^ expr_to_string e
        | None -> "")
  | Update (name, sets, where) ->
      let set (c, e) = c ^ " = " ^ expr_to_string e in
      "UPDATE " ^ name ^ " SET "
      ^ String.concat ", " (List.map set sets)
      ^ (match where with
        | Some e -> " WHERE " ^ expr_to_string e
        | None -> "")
  | Drop_table name -> "DROP TABLE " ^ name
