(** Recursive-descent parser for the SQL subset.

    Grammar highlights: SELECT [DISTINCT] items FROM t [alias], ...
    [WHERE expr] [GROUP BY exprs] [HAVING expr] [ORDER BY expr [ASC|DESC],
    ...] [LIMIT k]; expressions cover arithmetic, comparisons, AND/OR/NOT,
    BETWEEN, [NOT] IN (list | subquery), EXISTS (subquery), IS [NOT] NULL,
    [NOT] LIKE, aggregates, and scalar functions. DDL/DML: CREATE TABLE,
    INSERT INTO ... VALUES, DELETE, UPDATE, DROP TABLE.

    The expression entry points are also used by the PaQL parser for the
    WHERE and SUCH THAT clauses. *)

exception Parse_error of string

type state
(** Token cursor; exposed so {!Paql.Parser} can share sub-parsers. *)

val state_of_tokens : Lexer.token list -> state
val peek : state -> Lexer.token
val advance : state -> Lexer.token
val expect_keyword : state -> string -> unit
val accept_keyword : state -> string -> bool
val at_keyword : state -> string -> bool
val expect : state -> Lexer.token -> unit
val accept : state -> Lexer.token -> bool
val fail : state -> string -> 'a

val parse_expr_state : state -> Ast.expr
val parse_select_state : state -> Ast.select
val parse_identifier : state -> string

val parse_expr : string -> Ast.expr
(** Parse a standalone expression; raises {!Parse_error} on trailing
    input. *)

val parse_select : string -> Ast.select
val parse_statement : string -> Ast.statement
val parse_script : string -> Ast.statement list
(** Semicolon-separated statements. *)
