open Ast

exception Parse_error of string

type state = { toks : Lexer.token array; mutable pos : int }

let state_of_tokens toks = { toks = Array.of_list toks; pos = 0 }

let peek st = st.toks.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1)
  else Lexer.Eof

let advance st =
  let t = peek st in
  if t <> Lexer.Eof then st.pos <- st.pos + 1;
  t

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s (at token %s)" msg
          (Lexer.token_to_string (peek st))))

let accept st tok =
  if peek st = tok then (
    ignore (advance st);
    true)
  else false

let expect st tok =
  if not (accept st tok) then
    fail st ("expected " ^ Lexer.token_to_string tok)

let at_keyword st kw = match peek st with Lexer.Keyword k -> k = kw | _ -> false

let accept_keyword st kw =
  if at_keyword st kw then (
    ignore (advance st);
    true)
  else false

let expect_keyword st kw =
  if not (accept_keyword st kw) then fail st ("expected " ^ kw)

let parse_identifier st =
  match advance st with
  | Lexer.Ident name -> name
  | t -> raise (Parse_error ("expected identifier, got " ^ Lexer.token_to_string t))

(* A column reference, optionally qualified: name | alias . name *)
let parse_column_ref st first =
  if accept st Lexer.Dot then
    match advance st with
    | Lexer.Ident field -> first ^ "." ^ field
    | t ->
        raise
          (Parse_error
             ("expected field name after '.', got " ^ Lexer.token_to_string t))
  else first

let agg_of_keyword = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

let rec parse_primary st =
  match advance st with
  | Lexer.Int_lit i -> Lit (Pb_relation.Value.Int i)
  | Lexer.Float_lit f -> Lit (Pb_relation.Value.Float f)
  | Lexer.Str_lit s -> Lit (Pb_relation.Value.Str s)
  | Lexer.Keyword "TRUE" -> Lit (Pb_relation.Value.Bool true)
  | Lexer.Keyword "FALSE" -> Lit (Pb_relation.Value.Bool false)
  | Lexer.Keyword "NULL" -> Lit Pb_relation.Value.Null
  | Lexer.Keyword "EXISTS" ->
      expect st Lexer.Lparen;
      let q = parse_select_state st in
      expect st Lexer.Rparen;
      Exists q
  | Lexer.Keyword "NOT" -> Not (parse_primary st)
  | Lexer.Keyword "CASE" ->
      let rec branches acc =
        if accept_keyword st "WHEN" then begin
          let cond = parse_expr_state st in
          expect_keyword st "THEN";
          let value = parse_expr_state st in
          branches ((cond, value) :: acc)
        end
        else List.rev acc
      in
      let bs = branches [] in
      if bs = [] then fail st "CASE requires at least one WHEN branch";
      let default =
        if accept_keyword st "ELSE" then Some (parse_expr_state st) else None
      in
      expect_keyword st "END";
      Case (bs, default)
  | Lexer.Keyword kw when agg_of_keyword kw <> None -> (
      let agg = Option.get (agg_of_keyword kw) in
      expect st Lexer.Lparen;
      match (agg, peek st) with
      | Count, Lexer.Star ->
          ignore (advance st);
          expect st Lexer.Rparen;
          Agg (Count_star, None)
      | _ ->
          let arg = parse_expr_state st in
          expect st Lexer.Rparen;
          Agg (agg, Some arg))
  | Lexer.Minus -> Unary_minus (parse_primary st)
  | Lexer.Plus -> parse_primary st
  | Lexer.Lparen ->
      if at_keyword st "SELECT" then (
        (* Scalar subqueries are not supported; parenthesized SELECT only
           appears behind IN/EXISTS, which handle it themselves. *)
        fail st "subquery not allowed here")
      else
        let e = parse_expr_state st in
        expect st Lexer.Rparen;
        e
  | Lexer.Ident name ->
      if peek st = Lexer.Lparen && peek2 st <> Lexer.Star then (
        ignore (advance st);
        let args =
          if peek st = Lexer.Rparen then []
          else
            let rec more acc =
              let e = parse_expr_state st in
              if accept st Lexer.Comma then more (e :: acc)
              else List.rev (e :: acc)
            in
            more []
        in
        expect st Lexer.Rparen;
        Func (name, args))
      else Col (parse_column_ref st name)
  | t -> raise (Parse_error ("unexpected token " ^ Lexer.token_to_string t))

and parse_mul st =
  let rec loop acc =
    match peek st with
    | Lexer.Star ->
        ignore (advance st);
        loop (Binop (Mul, acc, parse_primary st))
    | Lexer.Slash ->
        ignore (advance st);
        loop (Binop (Div, acc, parse_primary st))
    | _ -> acc
  in
  loop (parse_primary st)

and parse_add st =
  let rec loop acc =
    match peek st with
    | Lexer.Plus ->
        ignore (advance st);
        loop (Binop (Add, acc, parse_mul st))
    | Lexer.Minus ->
        ignore (advance st);
        loop (Binop (Sub, acc, parse_mul st))
    | _ -> acc
  in
  loop (parse_mul st)

(* Comparison level, including BETWEEN / IN / IS NULL / LIKE postfixes. *)
and parse_comparison st =
  let lhs = parse_add st in
  let negated = accept_keyword st "NOT" in
  match peek st with
  | Lexer.Eq_tok ->
      ignore (advance st);
      let e = Binop (Eq, lhs, parse_add st) in
      if negated then Not e else e
  | Lexer.Neq_tok ->
      ignore (advance st);
      let e = Binop (Neq, lhs, parse_add st) in
      if negated then Not e else e
  | Lexer.Lt_tok ->
      ignore (advance st);
      let e = Binop (Lt, lhs, parse_add st) in
      if negated then Not e else e
  | Lexer.Le_tok ->
      ignore (advance st);
      let e = Binop (Le, lhs, parse_add st) in
      if negated then Not e else e
  | Lexer.Gt_tok ->
      ignore (advance st);
      let e = Binop (Gt, lhs, parse_add st) in
      if negated then Not e else e
  | Lexer.Ge_tok ->
      ignore (advance st);
      let e = Binop (Ge, lhs, parse_add st) in
      if negated then Not e else e
  | Lexer.Keyword "BETWEEN" ->
      ignore (advance st);
      let lo = parse_add st in
      expect_keyword st "AND";
      let hi = parse_add st in
      let e = Between (lhs, lo, hi) in
      if negated then Not e else e
  | Lexer.Keyword "IN" ->
      ignore (advance st);
      expect st Lexer.Lparen;
      let e =
        if at_keyword st "SELECT" then In_query (lhs, parse_select_state st, negated)
        else
          let rec more acc =
            let item = parse_expr_state st in
            if accept st Lexer.Comma then more (item :: acc)
            else List.rev (item :: acc)
          in
          In_list (lhs, more [], negated)
      in
      expect st Lexer.Rparen;
      e
  | Lexer.Keyword "IS" ->
      ignore (advance st);
      let neg = accept_keyword st "NOT" in
      expect_keyword st "NULL";
      if negated then fail st "NOT before IS is not supported"
      else Is_null (lhs, neg)
  | Lexer.Keyword "LIKE" -> (
      ignore (advance st);
      match advance st with
      | Lexer.Str_lit pat -> Like (lhs, pat, negated)
      | t ->
          raise
            (Parse_error
               ("expected pattern string after LIKE, got "
              ^ Lexer.token_to_string t)))
  | _ ->
      if negated then fail st "expected comparison after NOT" else lhs

and parse_and st =
  let rec loop acc =
    if accept_keyword st "AND" then loop (Binop (And, acc, parse_comparison st))
    else acc
  in
  loop (parse_comparison st)

and parse_expr_state st =
  let rec loop acc =
    if accept_keyword st "OR" then loop (Binop (Or, acc, parse_and st))
    else acc
  in
  loop (parse_and st)

and parse_select_items st =
  let parse_item () =
    if accept st Lexer.Star then Star_item
    else
      let e = parse_expr_state st in
      let alias =
        if accept_keyword st "AS" then Some (parse_identifier st)
        else
          match peek st with
          | Lexer.Ident _ -> Some (parse_identifier st)
          | _ -> None
      in
      Expr_item (e, alias)
  in
  let rec more acc =
    let item = parse_item () in
    if accept st Lexer.Comma then more (item :: acc) else List.rev (item :: acc)
  in
  more []

and parse_from st =
  let parse_ref () =
    let rel_name = parse_identifier st in
    let alias =
      if accept_keyword st "AS" then Some (parse_identifier st)
      else
        match peek st with
        | Lexer.Ident _ -> Some (parse_identifier st)
        | _ -> None
    in
    { rel_name; alias }
  in
  let rec more acc =
    let r = parse_ref () in
    if accept st Lexer.Comma then more (r :: acc) else List.rev (r :: acc)
  in
  more []

and parse_select_state st =
  let first = parse_simple_select st in
  (* Left-associative set operations; INTERSECT is not given higher
     precedence (documented deviation from the standard). *)
  let rec compounds acc =
    let op =
      if accept_keyword st "UNION" then
        Some (if accept_keyword st "ALL" then Union_all else Union)
      else if accept_keyword st "INTERSECT" then Some Intersect
      else if accept_keyword st "EXCEPT" then Some Except
      else None
    in
    match op with
    | Some op ->
        let rhs = parse_simple_select st in
        compounds ((op, rhs) :: acc)
    | None -> List.rev acc
  in
  let compound = compounds [] in
  if compound = [] then first else { first with compound }

and parse_simple_select st =
  expect_keyword st "SELECT";
  let distinct = accept_keyword st "DISTINCT" in
  let items = parse_select_items st in
  expect_keyword st "FROM";
  let from = parse_from st in
  let where =
    if accept_keyword st "WHERE" then Some (parse_expr_state st) else None
  in
  let group_by =
    if accept_keyword st "GROUP" then (
      expect_keyword st "BY";
      let rec more acc =
        let e = parse_expr_state st in
        if accept st Lexer.Comma then more (e :: acc) else List.rev (e :: acc)
      in
      more [])
    else []
  in
  let having =
    if accept_keyword st "HAVING" then Some (parse_expr_state st) else None
  in
  let order_by =
    if accept_keyword st "ORDER" then (
      expect_keyword st "BY";
      let rec more acc =
        let e = parse_expr_state st in
        let dir =
          if accept_keyword st "DESC" then Desc
          else (
            ignore (accept_keyword st "ASC");
            Asc)
        in
        if accept st Lexer.Comma then more ((e, dir) :: acc)
        else List.rev ((e, dir) :: acc)
      in
      more [])
    else []
  in
  let parse_count kw =
    if accept_keyword st kw then
      match advance st with
      | Lexer.Int_lit k -> Some k
      | t ->
          raise
            (Parse_error
               (Printf.sprintf "expected integer after %s, got %s" kw
                  (Lexer.token_to_string t)))
    else None
  in
  let limit = parse_count "LIMIT" in
  let offset = parse_count "OFFSET" in
  {
    distinct; items; from; where; group_by; having; order_by; limit; offset;
    compound = [];
  }

let parse_ty st =
  match advance st with
  | Lexer.Keyword "INT" -> Pb_relation.Value.T_int
  | Lexer.Keyword "FLOAT" -> Pb_relation.Value.T_float
  | Lexer.Keyword "TEXT" -> Pb_relation.Value.T_str
  | Lexer.Keyword "BOOL" -> Pb_relation.Value.T_bool
  | t -> raise (Parse_error ("expected column type, got " ^ Lexer.token_to_string t))

let parse_statement_state st =
  if at_keyword st "SELECT" then Select_stmt (parse_select_state st)
  else if accept_keyword st "CREATE" then
    if accept_keyword st "INDEX" then begin
      (* CREATE INDEX ON table (column) — index names are not needed by
         the planner, so the grammar omits them. *)
      expect_keyword st "ON";
      let table = parse_identifier st in
      expect st Lexer.Lparen;
      let column = parse_identifier st in
      expect st Lexer.Rparen;
      Create_index { table; column }
    end
    else (
    expect_keyword st "TABLE";
    let name = parse_identifier st in
    expect st Lexer.Lparen;
    let rec cols acc =
      let col_name = parse_identifier st in
      let col_ty = parse_ty st in
      let acc = { col_name; col_ty } :: acc in
      if accept st Lexer.Comma then cols acc else List.rev acc
    in
    let defs = cols [] in
    expect st Lexer.Rparen;
    Create_table (name, defs))
  else if accept_keyword st "INSERT" then (
    expect_keyword st "INTO";
    let name = parse_identifier st in
    let cols =
      if peek st = Lexer.Lparen then (
        ignore (advance st);
        let rec more acc =
          let c = parse_identifier st in
          if accept st Lexer.Comma then more (c :: acc) else List.rev (c :: acc)
        in
        let cs = more [] in
        expect st Lexer.Rparen;
        Some cs)
      else None
    in
    expect_keyword st "VALUES";
    let parse_row () =
      expect st Lexer.Lparen;
      let rec more acc =
        let e = parse_expr_state st in
        if accept st Lexer.Comma then more (e :: acc) else List.rev (e :: acc)
      in
      let row = more [] in
      expect st Lexer.Rparen;
      row
    in
    let rec rows acc =
      let r = parse_row () in
      if accept st Lexer.Comma then rows (r :: acc) else List.rev (r :: acc)
    in
    Insert (name, cols, rows []))
  else if accept_keyword st "DELETE" then (
    expect_keyword st "FROM";
    let name = parse_identifier st in
    let where =
      if accept_keyword st "WHERE" then Some (parse_expr_state st) else None
    in
    Delete (name, where))
  else if accept_keyword st "UPDATE" then (
    let name = parse_identifier st in
    expect_keyword st "SET";
    let rec sets acc =
      let c = parse_identifier st in
      expect st Lexer.Eq_tok;
      let e = parse_expr_state st in
      if accept st Lexer.Comma then sets ((c, e) :: acc)
      else List.rev ((c, e) :: acc)
    in
    let assignments = sets [] in
    let where =
      if accept_keyword st "WHERE" then Some (parse_expr_state st) else None
    in
    Update (name, assignments, where))
  else if accept_keyword st "DROP" then (
    expect_keyword st "TABLE";
    Drop_table (parse_identifier st))
  else fail st "expected statement"

let finish st =
  ignore (accept st Lexer.Semicolon);
  if peek st <> Lexer.Eof then fail st "trailing input"

let parse_expr src =
  let st = state_of_tokens (Lexer.tokenize src) in
  let e = parse_expr_state st in
  finish st;
  e

let parse_select src =
  let st = state_of_tokens (Lexer.tokenize src) in
  let q = parse_select_state st in
  finish st;
  q

let parse_statement src =
  let st = state_of_tokens (Lexer.tokenize src) in
  let s = parse_statement_state st in
  finish st;
  s

let parse_script src =
  let st = state_of_tokens (Lexer.tokenize src) in
  let rec loop acc =
    if peek st = Lexer.Eof then List.rev acc
    else
      let s = parse_statement_state st in
      ignore (accept st Lexer.Semicolon);
      loop (s :: acc)
  in
  loop []
