module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema

type t = { keys : Value.t array; positions : int array }

type bound = Value.t * bool

let build rel col =
  let idx = Schema.index_of_exn (Relation.schema rel) col in
  let entries = ref [] in
  Array.iteri
    (fun pos row ->
      let key = row.(idx) in
      if not (Value.is_null key) then entries := (key, pos) :: !entries)
    (Relation.rows rel);
  let entries = Array.of_list !entries in
  Array.sort
    (fun (ka, pa) (kb, pb) ->
      let c = Value.compare_values ka kb in
      if c <> 0 then c else Int.compare pa pb)
    entries;
  {
    keys = Array.map fst entries;
    positions = Array.map snd entries;
  }

let cardinality t = Array.length t.keys

(* First position whose key is >= (or > when [strict]) the probe. *)
let lower_bound t probe ~strict =
  let n = Array.length t.keys in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let c = Value.compare_values t.keys.(mid) probe in
      let before = if strict then c <= 0 else c < 0 in
      if before then go (mid + 1) hi else go lo mid
  in
  go 0 n

let range ?lo ?hi t =
  let start =
    match lo with
    | None -> 0
    | Some (v, inclusive) -> lower_bound t v ~strict:(not inclusive)
  in
  let stop =
    match hi with
    | None -> Array.length t.keys
    | Some (v, inclusive) -> lower_bound t v ~strict:inclusive
  in
  let out = ref [] in
  for i = stop - 1 downto start do
    out := t.positions.(i) :: !out
  done;
  !out

let lookup t v = range ~lo:(v, true) ~hi:(v, true) t
