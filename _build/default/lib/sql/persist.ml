module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation

let manifest_file = "manifest.txt"

let ty_tag = function
  | Value.T_int -> "INT"
  | Value.T_float -> "FLOAT"
  | Value.T_bool -> "BOOL"
  | Value.T_str -> "TEXT"

let ty_of_tag = function
  | "INT" -> Value.T_int
  | "FLOAT" -> Value.T_float
  | "BOOL" -> Value.T_bool
  | "TEXT" -> Value.T_str
  | tag -> failwith ("Persist: unknown type tag " ^ tag)

let serialize_value v =
  match v with Value.Null -> "" | v -> Value.to_string v

let parse_value ty field =
  if field = "" then Value.Null
  else
    match ty with
    | Value.T_int -> (
        match int_of_string_opt field with
        | Some i -> Value.Int i
        | None -> failwith ("Persist: bad INT field " ^ field))
    | Value.T_float -> (
        match float_of_string_opt field with
        | Some f -> Value.Float f
        | None -> failwith ("Persist: bad FLOAT field " ^ field))
    | Value.T_bool -> (
        match String.lowercase_ascii field with
        | "true" -> Value.Bool true
        | "false" -> Value.Bool false
        | _ -> failwith ("Persist: bad BOOL field " ^ field))
    | Value.T_str -> Value.Str field

let save_dir db dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let manifest = Buffer.create 256 in
  List.iter
    (fun table ->
      let rel = Database.find_exn db table in
      let schema = Relation.schema rel in
      let cols =
        String.concat ","
          (List.map
             (fun { Schema.name; ty } -> name ^ ":" ^ ty_tag ty)
             (Schema.columns schema))
      in
      let indexes = String.concat "," (Database.indexed_columns db table) in
      Buffer.add_string manifest
        (Printf.sprintf "%s\t%s\t%s\n" table cols indexes);
      let rows =
        List.map
          (fun row -> Array.to_list (Array.map serialize_value row))
          (Relation.to_list rel)
      in
      Pb_util.Csv.write_file (Filename.concat dir (table ^ ".csv")) rows)
    (Database.table_names db);
  let oc = open_out (Filename.concat dir manifest_file) in
  output_string oc (Buffer.contents manifest);
  close_out oc

let load_dir dir =
  let path = Filename.concat dir manifest_file in
  if not (Sys.file_exists path) then
    failwith ("Persist: no manifest at " ^ path);
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let db = Database.create () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ table; cols; indexes ] ->
          let columns =
            List.map
              (fun spec ->
                match String.rindex_opt spec ':' with
                | Some i ->
                    {
                      Schema.name = String.sub spec 0 i;
                      ty =
                        ty_of_tag
                          (String.sub spec (i + 1) (String.length spec - i - 1));
                    }
                | None -> failwith ("Persist: bad column spec " ^ spec))
              (String.split_on_char ',' cols)
          in
          let schema = Schema.make columns in
          let tys = List.map (fun c -> c.Schema.ty) (Schema.columns schema) in
          let csv_path = Filename.concat dir (table ^ ".csv") in
          let raw_rows =
            if Sys.file_exists csv_path then Pb_util.Csv.parse_file csv_path
            else []
          in
          let rows =
            List.map
              (fun fields ->
                if List.length fields <> List.length tys then
                  failwith
                    (Printf.sprintf "Persist: row arity mismatch in %s" table)
                else Array.of_list (List.map2 parse_value tys fields))
              raw_rows
          in
          Database.put db table (Relation.create schema rows);
          if indexes <> "" then
            List.iter
              (fun column -> Database.create_index db ~table ~column)
              (String.split_on_char ',' indexes)
      | _ -> failwith ("Persist: malformed manifest line: " ^ line))
    lines;
  db
