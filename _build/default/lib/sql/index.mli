(** Ordered secondary indexes.

    An index is a (key, row-position) table sorted by key with binary
    search for point and range lookups — the moral equivalent of a B-tree
    for an in-memory, read-mostly store. The planner uses indexes to
    answer sargable base predicates ([col = v], [col < v],
    [col BETWEEN a AND b]) without scanning.

    NULL keys are excluded: SQL comparisons with NULL are never true, so
    an index scan and a full scan agree. *)

type t

val build : Pb_relation.Relation.t -> string -> t
(** [build rel col] indexes column [col]; raises [Failure] on unknown
    columns. *)

val cardinality : t -> int
(** Indexed (non-NULL) entries. *)

type bound = Pb_relation.Value.t * bool
(** Key and whether the bound is inclusive. *)

val range : ?lo:bound -> ?hi:bound -> t -> int list
(** Row positions with key within the bounds (either side may be open),
    in ascending key order. *)

val lookup : t -> Pb_relation.Value.t -> int list
(** Row positions with key equal to the value. *)
