(** Tokenizer shared by the SQL and PaQL parsers.

    Keywords are recognized case-insensitively and include both standard
    SQL and the PaQL extensions (PACKAGE, SUCH, THAT, REPEAT, MAXIMIZE,
    MINIMIZE). Identifiers may be qualified later by the parser via the
    [Dot] token. *)

type token =
  | Ident of string          (** lower-cased identifier *)
  | Keyword of string        (** upper-cased reserved word *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string        (** contents of a '...'-quoted literal *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Eq_tok
  | Neq_tok
  | Lt_tok
  | Le_tok
  | Gt_tok
  | Ge_tok
  | Semicolon
  | Eof

exception Lex_error of string * int
(** Message and byte offset. *)

val keywords : string list
(** The reserved words, upper-cased. *)

val tokenize : string -> token list
(** Full tokenization; the list always ends with [Eof].
    ['--'] starts a comment to end of line. Raises {!Lex_error}. *)

val token_to_string : token -> string
