lib/sql/executor.mli: Ast Database Pb_relation
