lib/sql/executor.ml: Array Ast Database Float Hashtbl List Option Parser Pb_relation Planner Printf String
