lib/sql/database.mli: Index Pb_relation
