lib/sql/persist.ml: Array Buffer Database Filename List Pb_relation Pb_util Printf String Sys
