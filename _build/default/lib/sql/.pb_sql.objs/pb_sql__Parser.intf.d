lib/sql/parser.mli: Ast Lexer
