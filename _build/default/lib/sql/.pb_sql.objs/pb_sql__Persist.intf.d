lib/sql/persist.mli: Database
