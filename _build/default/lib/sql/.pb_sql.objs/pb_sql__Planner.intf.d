lib/sql/planner.mli: Ast Database Pb_relation
