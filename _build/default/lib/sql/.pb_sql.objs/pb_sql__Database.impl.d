lib/sql/database.ml: Array Hashtbl Index List Pb_relation Pb_util Printf String
