lib/sql/planner.ml: Array Ast Database Hashtbl Index List Option Pb_relation String
