lib/sql/lexer.mli:
