lib/sql/index.mli: Pb_relation
