lib/sql/index.ml: Array Int Pb_relation
