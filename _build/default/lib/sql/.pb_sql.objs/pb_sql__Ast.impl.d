lib/sql/ast.ml: Buffer List Pb_relation String
