lib/sql/parser.ml: Array Ast Lexer List Option Pb_relation Printf
