type token =
  | Ident of string
  | Keyword of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Eq_tok
  | Neq_tok
  | Lt_tok
  | Le_tok
  | Gt_tok
  | Ge_tok
  | Semicolon
  | Eof

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "ASC";
    "DESC"; "LIMIT"; "DISTINCT"; "AS"; "AND"; "OR"; "NOT"; "BETWEEN"; "IN";
    "EXISTS"; "IS"; "NULL"; "TRUE"; "FALSE"; "LIKE"; "COUNT"; "SUM"; "AVG";
    "MIN"; "MAX"; "CREATE"; "TABLE"; "INSERT"; "INTO"; "VALUES"; "DELETE";
    "UPDATE"; "SET"; "DROP"; "INT"; "FLOAT"; "TEXT"; "BOOL"; "PACKAGE"; "SUCH";
    "THAT"; "REPEAT"; "MAXIMIZE"; "MINIMIZE"; "INPUT"; "OUTPUT"; "CASE";
    "WHEN"; "THEN"; "ELSE"; "END"; "UNION"; "INTERSECT"; "EXCEPT"; "ALL";
    "OFFSET"; "INDEX"; "ON";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let rec skip_line_comment i = if i < n && src.[i] <> '\n' then skip_line_comment (i + 1) else i in
  let rec loop i =
    if i >= n then emit Eof
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' -> loop (skip_line_comment (i + 2))
      | '(' -> emit Lparen; loop (i + 1)
      | ')' -> emit Rparen; loop (i + 1)
      | ',' -> emit Comma; loop (i + 1)
      | '.' when not (i + 1 < n && is_digit src.[i + 1]) -> emit Dot; loop (i + 1)
      | '*' -> emit Star; loop (i + 1)
      | '+' -> emit Plus; loop (i + 1)
      | '-' -> emit Minus; loop (i + 1)
      | '/' -> emit Slash; loop (i + 1)
      | ';' -> emit Semicolon; loop (i + 1)
      | '=' -> emit Eq_tok; loop (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit Neq_tok; loop (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '>' -> emit Neq_tok; loop (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit Le_tok; loop (i + 2)
      | '<' -> emit Lt_tok; loop (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit Ge_tok; loop (i + 2)
      | '>' -> emit Gt_tok; loop (i + 1)
      | '\'' -> string_lit (i + 1) (Buffer.create 16)
      | c when is_digit c || (c = '.' && i + 1 < n && is_digit src.[i + 1]) ->
          number i
      | c when is_ident_start c -> ident i
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  and string_lit i buf =
    if i >= n then raise (Lex_error ("unterminated string literal", i))
    else if src.[i] = '\'' then
      if i + 1 < n && src.[i + 1] = '\'' then (
        Buffer.add_char buf '\'';
        string_lit (i + 2) buf)
      else (
        emit (Str_lit (Buffer.contents buf));
        loop (i + 1))
    else (
      Buffer.add_char buf src.[i];
      string_lit (i + 1) buf)
  and number start =
    let i = ref start and seen_dot = ref false and seen_exp = ref false in
    let continue () =
      !i < n
      &&
      match src.[!i] with
      | c when is_digit c -> true
      | '.' when (not !seen_dot) && not !seen_exp ->
          seen_dot := true;
          true
      | 'e' | 'E' when not !seen_exp ->
          seen_exp := true;
          (* optional sign *)
          if !i + 1 < n && (src.[!i + 1] = '+' || src.[!i + 1] = '-') then incr i;
          true
      | _ -> false
    in
    while continue () do incr i done;
    let text = String.sub src start (!i - start) in
    (if !seen_dot || !seen_exp then
       match float_of_string_opt text with
       | Some f -> emit (Float_lit f)
       | None -> raise (Lex_error ("bad numeric literal " ^ text, start))
     else
       match int_of_string_opt text with
       | Some v -> emit (Int_lit v)
       | None -> raise (Lex_error ("bad numeric literal " ^ text, start)));
    loop !i
  and ident start =
    let i = ref start in
    while !i < n && is_ident_char src.[!i] do incr i done;
    let text = String.sub src start (!i - start) in
    let upper = String.uppercase_ascii text in
    if List.mem upper keywords then emit (Keyword upper)
    else emit (Ident (String.lowercase_ascii text));
    loop !i
  in
  loop 0;
  List.rev !toks

let token_to_string = function
  | Ident s -> s
  | Keyword s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> "'" ^ s ^ "'"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Eq_tok -> "="
  | Neq_tok -> "<>"
  | Lt_tok -> "<"
  | Le_tok -> "<="
  | Gt_tok -> ">"
  | Ge_tok -> ">="
  | Semicolon -> ";"
  | Eof -> "<eof>"
