module Relation = Pb_relation.Relation
module Value = Pb_relation.Value

type t = {
  base : Relation.t;
  alias : string;
  mult : int array;
  cardinality : int;  (* cached sum of mult *)
}

let create base ~alias =
  { base; alias; mult = Array.make (Relation.cardinality base) 0; cardinality = 0 }

let of_multiplicities base ~alias mult =
  if Array.length mult <> Relation.cardinality base then
    invalid_arg "Package.of_multiplicities: length mismatch";
  Array.iter
    (fun m -> if m < 0 then invalid_arg "Package.of_multiplicities: negative")
    mult;
  {
    base;
    alias;
    mult = Array.copy mult;
    cardinality = Array.fold_left ( + ) 0 mult;
  }

let of_indices base ~alias idxs =
  let mult = Array.make (Relation.cardinality base) 0 in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length mult then
        invalid_arg "Package.of_indices: index out of range";
      mult.(i) <- mult.(i) + 1)
    idxs;
  { base; alias; mult; cardinality = List.length idxs }

let base t = t.base
let alias t = t.alias
let multiplicity t i = t.mult.(i)
let multiplicities t = Array.copy t.mult
let cardinality t = t.cardinality

let support t =
  let out = ref [] in
  for i = Array.length t.mult - 1 downto 0 do
    if t.mult.(i) > 0 then out := i :: !out
  done;
  !out

let indices t =
  let out = ref [] in
  for i = Array.length t.mult - 1 downto 0 do
    for _ = 1 to t.mult.(i) do
      out := i :: !out
    done
  done;
  !out

let is_empty t = t.cardinality = 0

let add t i =
  let mult = Array.copy t.mult in
  mult.(i) <- mult.(i) + 1;
  { t with mult; cardinality = t.cardinality + 1 }

let remove t i =
  if t.mult.(i) <= 0 then invalid_arg "Package.remove: tuple not in package";
  let mult = Array.copy t.mult in
  mult.(i) <- mult.(i) - 1;
  { t with mult; cardinality = t.cardinality - 1 }

let replace t ~out_index ~in_index = add (remove t out_index) in_index

let equal a b = a.alias = b.alias && a.mult = b.mult
let compare_packages a b = compare (a.alias, a.mult) (b.alias, b.mult)

let materialize t =
  let schema = Pb_relation.Schema.qualify t.alias (Relation.schema t.base) in
  let rows = ref [] in
  for i = Array.length t.mult - 1 downto 0 do
    for _ = 1 to t.mult.(i) do
      rows := Relation.row t.base i :: !rows
    done
  done;
  Relation.create schema !rows

let sum_column t col =
  let idx = Pb_relation.Schema.index_of_exn (Relation.schema t.base) col in
  let total = ref 0.0 in
  Array.iteri
    (fun i m ->
      if m > 0 then
        match Value.to_float (Relation.row t.base i).(idx) with
        | Some x -> total := !total +. (float_of_int m *. x)
        | None -> ())
    t.mult;
  !total

let to_string ?max_rows t =
  Relation.to_table ?max_rows (materialize t)
  ^ Printf.sprintf "-- package of %d tuple(s) (%d distinct)\n" t.cardinality
      (List.length (support t))
