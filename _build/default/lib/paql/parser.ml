exception Parse_error of string

module Sql_parser = Pb_sql.Parser
module Lexer = Pb_sql.Lexer

let parse src =
  try
    let st = Sql_parser.state_of_tokens (Lexer.tokenize src) in
    Sql_parser.expect_keyword st "SELECT";
    Sql_parser.expect_keyword st "PACKAGE";
    Sql_parser.expect st Lexer.Lparen;
    let package_arg = Sql_parser.parse_identifier st in
    Sql_parser.expect st Lexer.Rparen;
    let package_alias =
      if Sql_parser.accept_keyword st "AS" then Sql_parser.parse_identifier st
      else "package"
    in
    Sql_parser.expect_keyword st "FROM";
    let input_relation = Sql_parser.parse_identifier st in
    let input_alias =
      ignore (Sql_parser.accept_keyword st "AS");
      match Sql_parser.peek st with
      | Lexer.Ident _ -> Sql_parser.parse_identifier st
      | _ -> input_relation
    in
    if String.lowercase_ascii package_arg <> String.lowercase_ascii input_alias
    then
      raise
        (Parse_error
           (Printf.sprintf
              "PACKAGE(%s) does not name the FROM alias %s" package_arg
              input_alias));
    let repeat =
      if Sql_parser.accept_keyword st "REPEAT" then
        match Sql_parser.advance st with
        | Lexer.Int_lit k when k >= 0 -> Some k
        | t ->
            raise
              (Parse_error
                 ("REPEAT expects a non-negative integer, got "
                ^ Lexer.token_to_string t))
      else None
    in
    let where =
      if Sql_parser.accept_keyword st "WHERE" then
        Some (Sql_parser.parse_expr_state st)
      else None
    in
    let such_that =
      if Sql_parser.accept_keyword st "SUCH" then begin
        Sql_parser.expect_keyword st "THAT";
        Some (Sql_parser.parse_expr_state st)
      end
      else None
    in
    let objective =
      if Sql_parser.accept_keyword st "MAXIMIZE" then
        Some (Ast.Maximize, Sql_parser.parse_expr_state st)
      else if Sql_parser.accept_keyword st "MINIMIZE" then
        Some (Ast.Minimize, Sql_parser.parse_expr_state st)
      else None
    in
    ignore (Sql_parser.accept st Lexer.Semicolon);
    if Sql_parser.peek st <> Lexer.Eof then
      Sql_parser.fail st "trailing input after PaQL query";
    {
      Ast.input_relation;
      input_alias = String.lowercase_ascii input_alias;
      package_alias = String.lowercase_ascii package_alias;
      repeat;
      where;
      such_that;
      objective;
    }
  with
  | Sql_parser.Parse_error msg -> raise (Parse_error msg)
  | Lexer.Lex_error (msg, pos) ->
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg pos))

let parse_opt src =
  match parse src with
  | q -> Ok q
  | exception Parse_error msg -> Error msg
