(** Candidate packages: multisets of rows of a candidate relation.

    A package is represented as a multiplicity vector over the {e
    candidate relation} — the input relation restricted to the rows that
    satisfy the query's base constraints (computed once by
    {!Semantics.candidates}). All evaluation strategies share this
    representation; [materialize] produces the result relation a user
    sees, with columns qualified by the package alias so SUCH THAT
    expressions like [SUM(P.calories)] resolve against it. *)

type t

val create : Pb_relation.Relation.t -> alias:string -> t
(** Empty package over a candidate relation. *)

val of_multiplicities : Pb_relation.Relation.t -> alias:string -> int array -> t
(** Raises [Invalid_argument] on negative multiplicities or length
    mismatch. *)

val of_indices : Pb_relation.Relation.t -> alias:string -> int list -> t
(** Multiset given as a list of candidate row indices (repetitions allowed). *)

val base : t -> Pb_relation.Relation.t
val alias : t -> string
val multiplicity : t -> int -> int
val multiplicities : t -> int array
(** A copy. *)

val cardinality : t -> int
(** Total tuple count including repetitions. *)

val support : t -> int list
(** Candidate indices with multiplicity > 0, ascending. *)

val indices : t -> int list
(** Candidate indices with repetitions, ascending. *)

val is_empty : t -> bool

val add : t -> int -> t
val remove : t -> int -> t
(** Functional single-tuple updates; [remove] raises [Invalid_argument]
    if the index is not in the package. *)

val replace : t -> out_index:int -> in_index:int -> t
(** The §4.2 single-tuple replacement move. *)

val equal : t -> t -> bool
val compare_packages : t -> t -> int

val materialize : t -> Pb_relation.Relation.t
(** Rows with repetitions, schema qualified by the package alias. *)

val sum_column : t -> string -> float
(** Multiplicity-weighted sum of a numeric column ([0.] for an empty
    package); raises [Failure] on unknown columns. *)

val to_string : ?max_rows:int -> t -> string
(** Table rendering plus a one-line cardinality footer. *)
