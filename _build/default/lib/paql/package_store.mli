(** Persistent packages inside the database — the paper's §2 argument (a)
    for DB-level package support: "packages themselves are structured
    data objects that should naturally be stored in and manipulated by a
    database system."

    A saved package becomes two things in the catalog:

    - a data table [pkg_<name>] holding the package's tuples (with
      repetitions and a [pkg_pos] position column), immediately queryable
      with ordinary SQL — [SELECT SUM(calories) FROM pkg_mealplan];
    - a row in the [__pb_packages] metadata table recording the PaQL
      text, source relation and cardinality, so the package can be
      re-validated or re-optimized later (e.g. after the base data
      changed).

    Names are restricted to [[a-z0-9_]] (lower-cased on save). *)

val metadata_table : string
(** ["__pb_packages"]. *)

val data_table : string -> string
(** [data_table name] = ["pkg_" ^ name]. *)

val save :
  Pb_sql.Database.t -> name:string -> query:Ast.t -> Package.t -> unit
(** Save (or overwrite) a package under [name]. Raises [Failure] on
    invalid names. *)

type entry = {
  name : string;
  query_text : string;  (** PaQL source, reparseable *)
  source_relation : string;
  cardinality : int;
}

val list_saved : Pb_sql.Database.t -> entry list
(** Saved packages sorted by name; empty when none were ever saved. *)

val load : Pb_sql.Database.t -> name:string -> (entry * Pb_relation.Relation.t) option
(** Metadata plus the stored rows (including the [pkg_pos] column). *)

val delete : Pb_sql.Database.t -> name:string -> bool
(** True when something was deleted. *)

val revalidate : Pb_sql.Database.t -> name:string -> (bool, string) result
(** Re-check the stored package against its stored query and the {e
    current} base data: reconstructs the package by matching stored rows
    against today's candidates, then runs the §4 validator. [Ok false]
    means the package no longer satisfies its query (e.g. the base table
    changed); [Error] reports missing metadata, unparseable stored text,
    or stored tuples that no longer exist. *)
