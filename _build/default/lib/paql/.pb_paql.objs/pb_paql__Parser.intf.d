lib/paql/parser.mli: Ast
