lib/paql/semantics.mli: Ast Package Pb_relation Pb_sql
