lib/paql/package_store.mli: Ast Package Pb_relation Pb_sql
