lib/paql/analyze.mli: Ast Pb_sql
