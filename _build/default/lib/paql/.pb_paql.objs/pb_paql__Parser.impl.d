lib/paql/parser.ml: Ast Pb_sql Printf String
