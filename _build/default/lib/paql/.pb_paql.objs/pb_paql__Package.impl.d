lib/paql/package.ml: Array List Pb_relation Printf
