lib/paql/analyze.ml: Ast List Option Pb_relation Pb_sql Printf Result String
