lib/paql/semantics.ml: Ast List Package Pb_relation Pb_sql
