lib/paql/package.mli: Pb_relation
