lib/paql/ast.mli: Format Pb_sql
