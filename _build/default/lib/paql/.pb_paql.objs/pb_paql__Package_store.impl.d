lib/paql/package_store.ml: Array Ast List Option Package Parser Pb_relation Pb_sql Printf Semantics String
