lib/paql/ast.ml: Buffer Format Option Pb_sql Printf
