(** PaQL parser: the SQL grammar extended with PACKAGE / REPEAT /
    SUCH THAT / MAXIMIZE / MINIMIZE, sharing the SQL expression
    sub-parsers so WHERE and SUCH THAT accept the full SQL expression
    language (including subqueries, which PaQL allows in SUCH THAT). *)

exception Parse_error of string
(** Re-raised from the SQL layer with PaQL context. *)

val parse : string -> Ast.t
(** Parse one PaQL query. Raises {!Parse_error} on malformed input, on a
    FROM clause with more than one relation, or when the PACKAGE argument
    does not match the FROM alias. *)

val parse_opt : string -> (Ast.t, string) result
