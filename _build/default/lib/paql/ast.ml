type direction = Maximize | Minimize

type t = {
  input_relation : string;
  input_alias : string;
  package_alias : string;
  repeat : int option;
  where : Pb_sql.Ast.expr option;
  such_that : Pb_sql.Ast.expr option;
  objective : (direction * Pb_sql.Ast.expr) option;
}

let max_multiplicity q = 1 + Option.value q.repeat ~default:0

let to_string q =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "SELECT PACKAGE(%s) AS %s FROM %s %s" q.input_alias
       q.package_alias q.input_relation q.input_alias);
  (match q.repeat with
  | Some k -> Buffer.add_string buf (Printf.sprintf " REPEAT %d" k)
  | None -> ());
  (match q.where with
  | Some e -> Buffer.add_string buf (" WHERE " ^ Pb_sql.Ast.expr_to_string e)
  | None -> ());
  (match q.such_that with
  | Some e ->
      Buffer.add_string buf (" SUCH THAT " ^ Pb_sql.Ast.expr_to_string e)
  | None -> ());
  (match q.objective with
  | Some (Maximize, e) ->
      Buffer.add_string buf (" MAXIMIZE " ^ Pb_sql.Ast.expr_to_string e)
  | Some (Minimize, e) ->
      Buffer.add_string buf (" MINIMIZE " ^ Pb_sql.Ast.expr_to_string e)
  | None -> ());
  Buffer.contents buf

let pp ppf q = Format.pp_print_string ppf (to_string q)
