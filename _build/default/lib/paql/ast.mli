(** Abstract syntax of PaQL package queries (§2 of the paper).

    A PaQL query has the shape

    {v
    SELECT PACKAGE(R) AS P
    FROM <relation> R [REPEAT k]
    WHERE <base constraints on R>
    SUCH THAT <global constraints on P>
    [MAXIMIZE | MINIMIZE] <aggregate over P>
    v}

    Expressions reuse the SQL AST ({!Pb_sql.Ast.expr}): base constraints
    are ordinary row predicates over the input alias; global constraints
    and the objective are aggregate expressions over the package alias.

    Multiplicity semantics: without REPEAT each input tuple may appear at
    most once in a package. [REPEAT k] allows up to [k] {e additional}
    copies, i.e. multiplicity at most [k + 1] — the convention of the full
    PaQL specification the demo refers to ([1] in the paper). *)

type direction = Maximize | Minimize

type t = {
  input_relation : string;  (** table named in FROM *)
  input_alias : string;     (** alias bound in FROM (defaults to the table name) *)
  package_alias : string;   (** P in [PACKAGE(R) AS P] (defaults to ["package"]) *)
  repeat : int option;      (** [REPEAT k]: up to k extra copies per tuple *)
  where : Pb_sql.Ast.expr option;
  such_that : Pb_sql.Ast.expr option;
  objective : (direction * Pb_sql.Ast.expr) option;
}

val max_multiplicity : t -> int
(** [1 + repeat] (1 when REPEAT is absent). *)

val to_string : t -> string
(** Pretty-print in PaQL concrete syntax; parses back to an equal query. *)

val pp : Format.formatter -> t -> unit
