module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema
module Value = Pb_relation.Value

let metadata_table = "__pb_packages"

let data_table name = "pkg_" ^ name

let valid_name name =
  name <> ""
  && String.for_all
       (fun ch -> (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch = '_')
       name

let metadata_schema =
  Schema.make
    [
      { Schema.name = "name"; ty = Value.T_str };
      { Schema.name = "query"; ty = Value.T_str };
      { Schema.name = "source"; ty = Value.T_str };
      { Schema.name = "cardinality"; ty = Value.T_int };
    ]

let metadata db =
  match Pb_sql.Database.find db metadata_table with
  | Some rel -> rel
  | None -> Relation.empty metadata_schema

let base_name col =
  match String.rindex_opt col '.' with
  | Some i -> String.sub col (i + 1) (String.length col - i - 1)
  | None -> col

let save db ~name ~(query : Ast.t) pkg =
  let name = String.lowercase_ascii name in
  if not (valid_name name) then
    failwith
      (Printf.sprintf
         "Package_store.save: invalid name %S (use lower-case letters, \
          digits, underscores)"
         name);
  (* Store rows under unqualified column names plus a position column. *)
  let materialized = Package.materialize pkg in
  let stored_schema =
    Schema.make
      ({ Schema.name = "pkg_pos"; ty = Value.T_int }
      :: List.map
           (fun { Schema.name; ty } -> { Schema.name = base_name name; ty })
           (Schema.columns (Relation.schema materialized)))
  in
  let rows =
    List.mapi
      (fun pos row -> Array.append [| Value.Int pos |] row)
      (Relation.to_list materialized)
  in
  Pb_sql.Database.put db (data_table name) (Relation.create stored_schema rows);
  let existing =
    Relation.filter
      (fun row -> not (Value.equal row.(0) (Value.Str name)))
      (metadata db)
  in
  let entry_row =
    [|
      Value.Str name;
      Value.Str (Ast.to_string query);
      Value.Str query.Ast.input_relation;
      Value.Int (Package.cardinality pkg);
    |]
  in
  Pb_sql.Database.put db metadata_table (Relation.append existing [ entry_row ])

type entry = {
  name : string;
  query_text : string;
  source_relation : string;
  cardinality : int;
}

let entry_of_row row =
  {
    name = Value.to_string row.(0);
    query_text = Value.to_string row.(1);
    source_relation = Value.to_string row.(2);
    cardinality = Option.value (Value.to_int row.(3)) ~default:0;
  }

let list_saved db =
  List.sort
    (fun a b -> String.compare a.name b.name)
    (List.map entry_of_row (Relation.to_list (metadata db)))

let find_entry db name =
  List.find_opt (fun e -> e.name = name) (list_saved db)

let load db ~name =
  let name = String.lowercase_ascii name in
  match (find_entry db name, Pb_sql.Database.find db (data_table name)) with
  | Some entry, Some rows -> Some (entry, rows)
  | _ -> None

let delete db ~name =
  let name = String.lowercase_ascii name in
  match find_entry db name with
  | None -> false
  | Some _ ->
      Pb_sql.Database.drop db (data_table name);
      Pb_sql.Database.put db metadata_table
        (Relation.filter
           (fun row -> not (Value.equal row.(0) (Value.Str name)))
           (metadata db));
      true

let revalidate db ~name =
  let name = String.lowercase_ascii name in
  match load db ~name with
  | None -> Error (Printf.sprintf "no saved package named %s" name)
  | Some (entry, stored) -> (
      match Parser.parse entry.query_text with
      | exception Parser.Parse_error msg ->
          Error ("stored query no longer parses: " ^ msg)
      | query -> (
          match Semantics.candidates db query with
          | exception Failure msg -> Error msg
          | candidates ->
              let cand_rows = Relation.rows candidates in
              let arity = Schema.arity (Relation.schema candidates) in
              (* Match each stored row (sans pkg_pos) against the current
                 candidates by full-tuple equality. *)
              let match_row stored_row =
                let payload = Array.sub stored_row 1 (Array.length stored_row - 1) in
                if Array.length payload <> arity then None
                else
                  let found = ref None in
                  Array.iteri
                    (fun i cand ->
                      if !found = None && Array.for_all2 Value.equal payload cand
                      then found := Some i)
                    cand_rows;
                  !found
              in
              let mult = Array.make (Relation.cardinality candidates) 0 in
              let missing = ref 0 in
              List.iter
                (fun row ->
                  match match_row row with
                  | Some i -> mult.(i) <- mult.(i) + 1
                  | None -> incr missing)
                (Relation.to_list stored);
              if !missing > 0 then
                Error
                  (Printf.sprintf
                     "%d stored tuple(s) no longer satisfy the base \
                      constraints or vanished from %s"
                     !missing entry.source_relation)
              else
                let pkg =
                  Package.of_multiplicities candidates
                    ~alias:query.Ast.package_alias mult
                in
                Ok (Semantics.is_valid ~db query pkg)))
