type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let align_of i =
    match List.nth_opt align i with Some a -> a | None -> Left
  in
  let line cells =
    let padded =
      List.mapi (fun i c -> pad (align_of i) widths.(i) c) cells
    in
    String.concat " | " padded
  in
  let rule =
    String.concat "-+-"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let float_cell ?(digits = 3) x =
  if Float.is_integer x && Float.abs x < 1e15 && digits = 0 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" digits x
