lib/util/csv.mli:
