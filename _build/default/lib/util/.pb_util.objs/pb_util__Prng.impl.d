lib/util/prng.ml: Array Float Int Int64 Set
