lib/util/prng.mli:
