lib/util/csv.ml: Buffer List String
