lib/util/table.mli:
