lib/util/stats.mli:
