lib/util/stats.ml: Array Float List Unix
