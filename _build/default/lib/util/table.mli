(** Fixed-width ASCII table rendering for the CLI, examples, and the
    benchmark harness (every experiment table is printed through this). *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out [rows] under [header] with column widths
    fitted to content, a separator rule, and one space of padding. [align]
    gives per-column alignment (default: left; numeric-looking benchmark
    columns typically pass [Right]). Rows shorter than the header are padded
    with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val float_cell : ?digits:int -> float -> string
(** Compact fixed-point formatting for table cells (default 3 digits). *)
