let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let median = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let minimum = function [] -> 0.0 | xs -> List.fold_left min infinity xs
let maximum = function [] -> 0.0 | xs -> List.fold_left max neg_infinity xs

(* Lanczos approximation (g = 7, n = 9); accurate to ~1e-13 for x > 0. *)
let lanczos_coefficients =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let a = ref lanczos_coefficients.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let log_binomial n k =
  if k < 0 || k > n || n < 0 then neg_infinity
  else if k = 0 || k = n then 0.0
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

let log_sum_exp = function
  | [] -> neg_infinity
  | xs ->
      let m = List.fold_left max neg_infinity xs in
      if m = neg_infinity then neg_infinity
      else m +. log (List.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 xs)

let binomial_range_log n l u =
  let l = max 0 l and u = min n u in
  if l > u then neg_infinity
  else
    let rec terms c acc = if c > u then acc else terms (c + 1) (log_binomial n c :: acc) in
    log_sum_exp (terms l [])

let timeit f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
