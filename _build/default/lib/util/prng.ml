type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, OOPSLA 2014. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t n =
  assert (n > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform bits mapped into [0, 1). *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (u /. 9007199254740992.0)

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  mean +. (stddev *. draw ())

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm: k iterations, set-based. *)
  let module IS = Set.Make (Int) in
  let rec loop j acc =
    if j >= n then acc
    else
      let r = int t (j + 1) in
      let acc = if IS.mem r acc then IS.add j acc else IS.add r acc in
      loop (j + 1) acc
  in
  IS.elements (loop (n - k) IS.empty)
