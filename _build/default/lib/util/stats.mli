(** Small numeric helpers shared by the engine and the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val median : float list -> float
(** Median (average of middle pair for even lengths); 0 on empty. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank; 0 on empty. *)

val minimum : float list -> float
val maximum : float list -> float

val log_binomial : int -> int -> float
(** [log_binomial n k] = ln C(n,k), computed via lgamma; neg_infinity when
    the coefficient is zero. *)

val log_sum_exp : float list -> float
(** Numerically stable ln(Σ exp xi). *)

val binomial_range_log : int -> int -> int -> float
(** [binomial_range_log n l u] = ln Σ_{c=l..u} C(n,c), clamping [l,u] to
    [0,n]; neg_infinity when the range is empty. Used to report the §4.1
    search-space size after cardinality pruning without overflow. *)

val timeit : (unit -> 'a) -> 'a * float
(** [timeit f] runs [f ()] and also returns the elapsed wall time in
    seconds. *)
