(** Deterministic pseudo-random number generation.

    All randomized components of PackageBuilder (workload generators,
    random starting packages for local search, simulated users in adaptive
    exploration) draw from this splitmix64-based generator so that every
    experiment is reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n); requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [lo, hi). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box–Muller. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [0, n); requires [0 <= k <= n]. Result is sorted. *)
