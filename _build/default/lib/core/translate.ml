module Analyze = Pb_paql.Analyze
module Ast = Pb_paql.Ast
module Model = Pb_lp.Model

type t = { model : Model.t; vars : int array }

let strict_eps = 1e-6

(* Σ over tuples of max(coef, 0) * max_mult — an upper bound on the lhs of
   a linear atom, used to size big-M relaxations. *)
let lhs_upper_bound coef max_mult =
  let m = float_of_int max_mult in
  Array.fold_left (fun acc c -> if c > 0.0 then acc +. (c *. m) else acc) 0.0 coef

let lhs_lower_bound coef max_mult =
  let m = float_of_int max_mult in
  Array.fold_left (fun acc c -> if c < 0.0 then acc +. (c *. m) else acc) 0.0 coef

(* Add [terms sense rhs], optionally big-M-relaxed so that it only binds
   when the [indicator] binary equals 1. *)
let rec add_row model ~indicator ~name terms sense rhs ~coef_bounds =
  match indicator with
  | None -> Model.add_constr model ~name terms sense rhs
  | Some z -> (
      let lb, ub = coef_bounds in
      match sense with
      | Model.Le ->
          (* lhs <= rhs + M(1-z), M = ub - rhs *)
          let m = Float.max 0.0 (ub -. rhs) in
          Model.add_constr model ~name ((m, z) :: terms) Model.Le (rhs +. m)
      | Model.Ge ->
          let m = Float.max 0.0 (rhs -. lb) in
          Model.add_constr model ~name ((-.m, z) :: terms) Model.Ge (rhs -. m)
      | Model.Eq ->
          add_row model ~indicator ~name terms Model.Le rhs ~coef_bounds;
          add_row model ~indicator ~name terms Model.Ge rhs ~coef_bounds)

let count_terms vars =
  Array.to_list (Array.map (fun v -> (1.0, v)) vars)

let linear_terms coef vars =
  let out = ref [] in
  Array.iteri
    (fun i c -> if c <> 0.0 then out := (c, vars.(i)) :: !out)
    coef;
  !out

let cmp_to_row cmp rhs =
  match cmp with
  | Analyze.Le -> (Model.Le, rhs)
  | Analyze.Lt -> (Model.Le, rhs -. strict_eps)
  | Analyze.Ge -> (Model.Ge, rhs)
  | Analyze.Gt -> (Model.Ge, rhs +. strict_eps)

let fresh_name =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "%s%d" prefix !counter

let add_atom (c : Coeffs.t) model vars ~indicator atom =
  let max_mult = c.max_mult in
  let mf = float_of_int max_mult in
  let count_bounds = (0.0, mf *. float_of_int c.n) in
  match atom with
  | Coeffs.C_linear { coef; cmp; rhs; has_sum } ->
      let sense, row_rhs = cmp_to_row cmp rhs in
      add_row model ~indicator ~name:(fresh_name "lin") (linear_terms coef vars)
        sense row_rhs
        ~coef_bounds:(lhs_lower_bound coef max_mult, lhs_upper_bound coef max_mult);
      (* SQL NULL semantics: a SUM-bearing atom rejects the empty package. *)
      if has_sum then
        add_row model ~indicator ~name:(fresh_name "lin_nonempty")
          (count_terms vars) Model.Ge 1.0 ~coef_bounds:count_bounds
  | Coeffs.C_avg { arg; cmp; rhs } ->
      (* AVG(e) cmp c  ==>  Σ (e_i - c) x_i cmp 0, with COUNT >= 1. *)
      let shifted = Array.map (fun v -> v -. rhs) arg in
      let sense, row_rhs = cmp_to_row cmp 0.0 in
      add_row model ~indicator ~name:(fresh_name "avg")
        (linear_terms shifted vars) sense row_rhs
        ~coef_bounds:
          (lhs_lower_bound shifted max_mult, lhs_upper_bound shifted max_mult);
      add_row model ~indicator ~name:(fresh_name "avg_nonempty")
        (count_terms vars) Model.Ge 1.0 ~coef_bounds:count_bounds
  | Coeffs.C_ext { maximum; arg; cmp; rhs } -> (
      let witness_side =
        (* MIN <= c and MAX >= c need one witness tuple; the other two
           combinations restrict every selected tuple. *)
        match (maximum, cmp) with
        | false, (Analyze.Le | Analyze.Lt) -> true
        | true, (Analyze.Ge | Analyze.Gt) -> true
        | _ -> false
      in
      let tuple_ok v =
        match cmp with
        | Analyze.Le -> v <= rhs
        | Analyze.Lt -> v < rhs
        | Analyze.Ge -> v >= rhs
        | Analyze.Gt -> v > rhs
      in
      if witness_side then begin
        let witnesses = ref [] in
        Array.iteri
          (fun i v -> if tuple_ok v then witnesses := (1.0, vars.(i)) :: !witnesses)
          arg;
        (* Σ_{witness} x_i >= 1; with no witnesses the atom is
           unsatisfiable (0 >= 1). *)
        add_row model ~indicator ~name:(fresh_name "witness") !witnesses
          Model.Ge 1.0
          ~coef_bounds:(0.0, mf *. float_of_int (List.length !witnesses))
      end
      else begin
        (* Every selected tuple must individually satisfy the bound:
           x_i = 0 for violators (<= 0 relaxed by the indicator). *)
        Array.iteri
          (fun i v ->
            if not (tuple_ok v) then
              add_row model ~indicator ~name:(fresh_name "forbid")
                [ (1.0, vars.(i)) ]
                Model.Le 0.0 ~coef_bounds:(0.0, mf))
          arg;
        add_row model ~indicator ~name:(fresh_name "ext_nonempty")
          (count_terms vars) Model.Ge 1.0 ~coef_bounds:count_bounds
      end)

let rec add_formula (c : Coeffs.t) model vars ~indicator f =
  match f with
  | Coeffs.C_true -> ()
  | Coeffs.C_false ->
      (* Unsatisfiable (under the indicator): 0 >= 1 (relaxed). *)
      add_row model ~indicator ~name:(fresh_name "false") [] Model.Ge 1.0
        ~coef_bounds:(0.0, 0.0)
  | Coeffs.C_atom a -> add_atom c model vars ~indicator a
  | Coeffs.C_and fs -> List.iter (add_formula c model vars ~indicator) fs
  | Coeffs.C_or fs ->
      let branch_indicators =
        List.map
          (fun branch ->
            let z =
              Model.add_var model ~integer:true ~lower:0.0 ~upper:1.0
                (fresh_name "z")
            in
            add_formula c model vars ~indicator:(Some z) branch;
            z)
          fs
      in
      let terms = List.map (fun z -> (1.0, z)) branch_indicators in
      (match indicator with
      | None -> Model.add_constr model ~name:(fresh_name "or") terms Model.Ge 1.0
      | Some z ->
          (* At least one branch must hold when the parent holds:
             Σ z_k >= z_parent. *)
          Model.add_constr model ~name:(fresh_name "or")
            ((-1.0, z) :: terms)
            Model.Ge 0.0)

let build (c : Coeffs.t) =
  let model = Model.create () in
  let mf = float_of_int c.max_mult in
  let vars =
    Array.init c.n (fun i ->
        Model.add_var model ~integer:true ~lower:0.0 ~upper:mf
          (Printf.sprintf "x%d" i))
  in
  (match c.formula with
  | Ok f -> add_formula c model vars ~indicator:None f
  | Error reason ->
      failwith ("Translate.build: SUCH THAT is not linearizable: " ^ reason));
  (match c.objective with
  | None -> Model.set_objective model (Model.Maximize [])
  | Some None ->
      failwith "Translate.build: objective is not linearizable"
  | Some (Some (dir, coef)) ->
      let terms = linear_terms coef vars in
      Model.set_objective model
        (match dir with
        | Ast.Maximize -> Model.Maximize terms
        | Ast.Minimize -> Model.Minimize terms));
  { model; vars }

let package_of_solution (c : Coeffs.t) t x =
  let mult =
    Array.map
      (fun v -> int_of_float (Float.round x.(v)))
      t.vars
  in
  Coeffs.package_of_mult c mult
