module Analyze = Pb_paql.Analyze

type bounds = { lo : int; hi : int }

let bounds_to_string b =
  if b.lo > b.hi then "[empty]" else Printf.sprintf "[%d, %d]" b.lo b.hi

let eps = 1e-9

let clamp nm b = { lo = max 0 b.lo; hi = min nm b.hi }
let full nm = { lo = 0; hi = nm }
let empty_bounds = { lo = 1; hi = 0 }
let inter a b = { lo = max a.lo b.lo; hi = min a.hi b.hi }
let hull a b =
  if a.lo > a.hi then b
  else if b.lo > b.hi then a
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Largest integer k with k*c <= r (c > 0). *)
let floor_div r c = int_of_float (Float.floor ((r /. c) +. eps))

(* Smallest integer k with k*c >= r (c > 0). *)
let ceil_div r c = int_of_float (Float.ceil ((r /. c) -. eps))

let array_min a = Array.fold_left Float.min infinity a
let array_max a = Array.fold_left Float.max neg_infinity a

(* Keep cardinalities k such that a package of cardinality k can possibly
   satisfy the atom; see the .mli for the soundness argument. *)
let atom_bounds nm atom =
  match atom with
  | Coeffs.C_avg _ | Coeffs.C_ext _ ->
      (* AVG/MIN/MAX of an empty package is NULL, hence unsatisfied. *)
      { lo = 1; hi = nm }
  | Coeffs.C_linear { coef; cmp; rhs; has_sum } -> (
      let raise_lo b = if has_sum then { b with lo = max 1 b.lo } else b in
      if Array.length coef = 0 then
        (* No candidates: only the empty package exists. *)
        if
          Analyze.eval_cmp cmp 0.0 rhs
        then { lo = 0; hi = 0 }
        else empty_bounds
      else
        let minc = array_min coef and maxc = array_max coef in
        let strict = match cmp with Analyze.Lt | Analyze.Gt -> true | _ -> false in
        match cmp with
        | Analyze.Le | Analyze.Lt ->
            (* feasible k: k * minc (cmp) rhs *)
            let rhs = if strict then rhs -. eps else rhs in
            raise_lo
              (if minc > eps then { lo = 0; hi = floor_div rhs minc }
               else if minc < -.eps then { lo = ceil_div rhs minc; hi = nm }
               else if 0.0 <= rhs then full nm
               else { lo = 1; hi = nm })
            (* minc = 0, rhs < 0: the k = 0 package has sum 0 > rhs, so at
               least one tuple with a negative-able sum is needed; only
               k = 0 can be pruned soundly. *)
        | Analyze.Ge | Analyze.Gt ->
            let rhs = if strict then rhs +. eps else rhs in
            raise_lo
              (if maxc > eps then { lo = ceil_div rhs maxc; hi = nm }
               else if maxc < -.eps then { lo = 0; hi = floor_div rhs maxc }
               else if 0.0 >= rhs then full nm
               else { lo = 1; hi = nm }))

let rec formula_bounds nm f =
  match f with
  | Coeffs.C_true -> full nm
  | Coeffs.C_false -> empty_bounds
  | Coeffs.C_atom a -> clamp nm (atom_bounds nm a)
  | Coeffs.C_and fs ->
      List.fold_left (fun acc f -> inter acc (formula_bounds nm f)) (full nm) fs
  | Coeffs.C_or fs ->
      List.fold_left
        (fun acc f -> hull acc (formula_bounds nm f))
        empty_bounds fs

let cardinality_bounds (c : Coeffs.t) =
  let nm = c.n * c.max_mult in
  match c.formula with
  | Ok f -> formula_bounds nm f
  | Error _ -> full nm

let log2_unpruned (c : Coeffs.t) =
  float_of_int c.n *. (log (float_of_int (c.max_mult + 1)) /. log 2.0)

(* Number of multisets of cardinality k over n items, each used at most m
   times, in log space: coefficient of z^k in (1 + z + ... + z^m)^n. *)
let log_bounded_multisets n m k =
  if k = 0 then 0.0
  else if m = 1 then Pb_util.Stats.log_binomial n k
  else if m >= k then
    (* Bound never binds: plain multiset count C(n+k-1, k). *)
    Pb_util.Stats.log_binomial (n + k - 1) k
  else begin
    (* Inclusion–exclusion:
       Σ_j (-1)^j C(n,j) C(n + k - j(m+1) - 1, n - 1), combined as a
       signed log-sum-exp to stay in range. *)
    let terms = ref [] in
    let j = ref 0 in
    while !j * (m + 1) <= k do
      let sign = if !j mod 2 = 0 then 1.0 else -1.0 in
      let t =
        Pb_util.Stats.log_binomial n !j
        +. Pb_util.Stats.log_binomial (n + k - (!j * (m + 1)) - 1) (n - 1)
      in
      terms := (sign, t) :: !terms;
      incr j
    done;
    let peak = List.fold_left (fun acc (_, t) -> Float.max acc t) neg_infinity !terms in
    if peak = neg_infinity then neg_infinity
    else
      let scaled =
        List.fold_left (fun acc (s, t) -> acc +. (s *. exp (t -. peak))) 0.0 !terms
      in
      if scaled <= 0.0 then neg_infinity else peak +. log scaled
  end

let log2_pruned (c : Coeffs.t) b =
  let nm = c.n * c.max_mult in
  let lo = max 0 b.lo and hi = min nm b.hi in
  if lo > hi then neg_infinity
  else if c.max_mult = 1 then
    Pb_util.Stats.binomial_range_log c.n lo hi /. log 2.0
  else begin
    let terms = ref [] in
    for k = lo to hi do
      terms := log_bounded_multisets c.n c.max_mult k :: !terms
    done;
    Pb_util.Stats.log_sum_exp !terms /. log 2.0
  end

let reduction_factor_log10 c b =
  let unpruned = log2_unpruned c *. log 2.0 in
  let pruned = log2_pruned c b *. log 2.0 in
  if pruned = neg_infinity then infinity
  else (unpruned -. pruned) /. log 10.0
