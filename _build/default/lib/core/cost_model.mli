(** Strategy cost model — the §5 challenge the paper leaves open:
    "Currently, PACKAGEBUILDER heuristically combines all of them
    [evaluation techniques]. However, a more principled approach to
    package query optimization could add several benefits."

    The model produces an estimated cost (abstract work units, roughly
    "candidate checks" / "simplex pivots") per applicable strategy, using
    the same quantities the §4 techniques expose: the §4.1 pruned
    search-space size for exhaustive search, the model dimensions and
    Boolean structure for the ILP, and the neighbourhood size for local
    search. {!Engine}'s hybrid policy picks the cheapest {e exact}
    strategy when one is affordable and otherwise the cheapest overall —
    replacing the paper's hard-coded heuristics with explicit estimates
    that EXPLAIN can display. *)

type estimate = {
  strategy_label : string;  (** as reported by {!Engine.report} *)
  applicable : bool;  (** false e.g. for ILP on non-linearizable queries *)
  exact : bool;  (** does the strategy prove optimality/infeasibility? *)
  cost : float;  (** estimated abstract work; [infinity] when hopeless *)
  note : string;  (** one-line human-readable rationale *)
}

val estimates : Coeffs.t -> estimate list
(** One estimate per strategy, in a fixed order:
    brute-force, brute-force+pruning, ilp, local-search. *)

val proven_infeasible : Coeffs.t -> bool
(** True when the §4.1 bounds are empty — every strategy may answer "no
    package" immediately. *)

val pick : Coeffs.t -> estimate
(** The hybrid policy's choice: the cheapest applicable exact strategy if
    its cost is within [exact_preference] (10×) of the overall cheapest,
    otherwise the overall cheapest applicable strategy. *)

val to_table : Coeffs.t -> string
(** Render the estimates as an ASCII table (used by the CLI's EXPLAIN). *)
