type estimate = {
  strategy_label : string;
  applicable : bool;
  exact : bool;
  cost : float;
  note : string;
}

let exact_preference = 10.0

let linearizable (c : Coeffs.t) =
  Result.is_ok c.formula
  && match c.objective with None | Some (Some _) -> true | Some None -> false

(* Count atoms and disjunction branches of the compiled formula — the ILP
   row count and indicator count follow from these. *)
let rec formula_shape = function
  | Coeffs.C_true | Coeffs.C_false -> (0, 0)
  | Coeffs.C_atom _ -> (1, 0)
  | Coeffs.C_and fs ->
      List.fold_left
        (fun (a, o) f ->
          let a', o' = formula_shape f in
          (a + a', o + o'))
        (0, 0) fs
  | Coeffs.C_or fs ->
      List.fold_left
        (fun (a, o) f ->
          let a', o' = formula_shape f in
          (a + a', o + o'))
        (0, List.length fs)
        fs

let proven_infeasible (c : Coeffs.t) =
  let b = Pruning.cardinality_bounds c in
  b.Pruning.lo > b.Pruning.hi

let estimates (c : Coeffs.t) =
  let n = float_of_int (max 1 c.n) in
  let bounds = Pruning.cardinality_bounds c in
  let atoms, or_branches =
    match c.formula with
    | Ok f -> formula_shape f
    | Error _ -> (1, 0)
  in
  let per_check = float_of_int (atoms + 1) in
  let space log2_size =
    if log2_size = neg_infinity then 0.0
    else if log2_size > 60.0 then infinity
    else (2.0 ** log2_size) *. per_check
  in
  let bf_cost = space (Pruning.log2_unpruned c) in
  let bf_pruned_cost = space (Pruning.log2_pruned c bounds) in
  let ilp =
    if not (linearizable c) then
      {
        strategy_label = "ilp";
        applicable = false;
        exact = true;
        cost = infinity;
        note = "constraints or objective not linearizable";
      }
    else begin
      (* Work per node ~ one LP: pivots ~ rows, each O(n); nodes grow with
         the integrality gap, for which disjunction branches are the main
         driver in PaQL models. *)
      let rows = float_of_int (max 1 (2 * atoms)) in
      let expected_nodes = 16.0 *. (2.0 ** float_of_int (min or_branches 10)) in
      {
        strategy_label = "ilp";
        applicable = true;
        exact = true;
        cost = expected_nodes *. rows *. n;
        note =
          Printf.sprintf "%d atoms, %d disjunction branches over %d tuples"
            atoms or_branches c.n;
      }
    end
  in
  let ls_params = Local_search.default_params in
  let ls_cost =
    float_of_int (ls_params.Local_search.restarts * ls_params.Local_search.max_rounds)
    *. n *. per_check
  in
  [
    {
      strategy_label = "brute-force";
      applicable = bf_cost < infinity;
      exact = true;
      cost = bf_cost;
      note = Printf.sprintf "2^%.1f candidate packages" (Pruning.log2_unpruned c);
    };
    {
      strategy_label = "brute-force+pruning";
      applicable = bf_pruned_cost < infinity;
      exact = true;
      cost = bf_pruned_cost;
      note =
        Printf.sprintf "cardinality %s leaves 2^%.1f candidates"
          (Pruning.bounds_to_string bounds)
          (Pruning.log2_pruned c bounds);
    };
    ilp;
    {
      strategy_label = "local-search";
      applicable = true;
      exact = false;
      cost = ls_cost;
      note =
        Printf.sprintf "%d restarts x %d rounds x %d tuples"
          ls_params.Local_search.restarts ls_params.Local_search.max_rounds c.n;
    };
  ]

let pick (c : Coeffs.t) =
  let all = List.filter (fun e -> e.applicable) (estimates c) in
  match all with
  | [] -> assert false (* local search is always applicable *)
  | first :: _ ->
      let cheapest =
        List.fold_left (fun acc e -> if e.cost < acc.cost then e else acc) first all
      in
      let cheapest_exact =
        List.fold_left
          (fun acc e ->
            match acc with
            | Some best when best.cost <= e.cost -> acc
            | _ when e.exact -> Some e
            | _ -> acc)
          None all
      in
      (match cheapest_exact with
      | Some e when e.cost <= exact_preference *. Float.max 1.0 cheapest.cost -> e
      | _ -> cheapest)

let to_table c =
  let rows =
    List.map
      (fun e ->
        [
          e.strategy_label;
          (if e.applicable then "yes" else "no");
          (if e.exact then "yes" else "no");
          (if e.cost = infinity then "inf"
           else Printf.sprintf "10^%.1f" (log10 (Float.max 1.0 e.cost)));
          e.note;
        ])
      (estimates c)
  in
  Pb_util.Table.render
    ~header:[ "strategy"; "applicable"; "exact"; "est. cost"; "why" ]
    rows
