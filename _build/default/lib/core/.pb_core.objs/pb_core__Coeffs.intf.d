lib/core/coeffs.mli: Pb_paql Pb_relation Pb_sql
