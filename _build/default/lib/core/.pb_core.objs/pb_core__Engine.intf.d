lib/core/engine.mli: Annealing Coeffs Local_search Pb_paql Pb_sql Sql_generate
