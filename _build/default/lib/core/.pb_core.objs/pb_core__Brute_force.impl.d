lib/core/brute_force.ml: Array Coeffs List Option Pb_paql Pruning
