lib/core/annealing.mli: Coeffs Pb_paql
