lib/core/translate.mli: Coeffs Pb_lp Pb_paql
