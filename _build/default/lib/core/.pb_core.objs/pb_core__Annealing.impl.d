lib/core/annealing.ml: Array Coeffs Float List Option Pb_paql Pb_util Pruning
