lib/core/sql_generate.mli: Coeffs Pb_paql Pb_sql
