lib/core/pruning.mli: Coeffs
