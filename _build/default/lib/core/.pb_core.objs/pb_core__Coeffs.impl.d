lib/core/coeffs.ml: Array Float List Logs Pb_paql Pb_relation Pb_sql
