lib/core/pruning.ml: Array Coeffs Float List Pb_paql Pb_util Printf
