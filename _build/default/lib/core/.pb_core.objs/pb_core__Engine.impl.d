lib/core/engine.ml: Annealing Array Brute_force Coeffs Cost_model Float List Local_search Option Pb_lp Pb_paql Pb_util Printf Result Sql_generate Translate
