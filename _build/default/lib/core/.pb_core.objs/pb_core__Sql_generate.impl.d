lib/core/sql_generate.ml: Array Coeffs Fun List Option Pb_paql Pb_relation Pb_sql Printf Pruning String
