lib/core/translate.ml: Array Coeffs Float List Pb_lp Pb_paql Printf
