lib/core/local_search.mli: Coeffs Pb_paql Pb_sql
