lib/core/local_search.ml: Array Coeffs Float Fun Hashtbl List Option Pb_paql Pb_relation Pb_sql Pb_util Printf Pruning Result String
