lib/core/cost_model.ml: Coeffs Float List Local_search Pb_util Printf Pruning Result
