lib/core/brute_force.mli: Coeffs Pb_paql
