(** Cardinality-based pruning (§4.1).

    For every global constraint the strategy derives lower/upper bounds on
    the cardinality of any package that can satisfy it, then combines the
    bounds across the Boolean structure: intersection under AND, convex
    hull under OR. The derivations generalize the paper's two examples:

    - a ≤ COUNT ≤ b gives [a, b] directly;
    - L ≤ SUM(attr) ≤ U over positive attributes gives
      [ceil(L / max(attr)), floor(U / min(attr))].

    For a linear atom Σ cᵢ·xᵢ ≤ U the same argument uses the smallest and
    largest per-tuple coefficients; bounds are only claimed when the sign
    conditions make them sound (e.g. no upper bound is derived from a ≤
    constraint whose coefficients can be ≤ 0), so pruning never loses a
    valid package — the property test in the suite checks exactly this. *)

type bounds = { lo : int; hi : int }
(** Inclusive cardinality interval; [lo > hi] denotes the empty interval
    (the constraints are unsatisfiable at every cardinality). [hi] is
    always clamped to n·max_mult. *)

val bounds_to_string : bounds -> string

val cardinality_bounds : Coeffs.t -> bounds
(** Bounds for the query's formula; opaque formulas yield the trivial
    [0, n·max_mult]. *)

val log2_unpruned : Coeffs.t -> float
(** log₂ of the unpruned candidate-package count: 2ⁿ without REPEAT,
    (max_mult+1)ⁿ with. *)

val log2_pruned : Coeffs.t -> bounds -> float
(** log₂ of Σ_{c=lo..hi} (number of packages of cardinality c).
    Exact binomial sums without REPEAT; with REPEAT, counts bounded
    multisets via a dynamic program in log space. [neg_infinity] for the
    empty interval. *)

val reduction_factor_log10 : Coeffs.t -> bounds -> float
(** log₁₀(unpruned / pruned) — the headline number for experiment T1. *)
