module Ast = Pb_paql.Ast
module Semantics = Pb_paql.Semantics

type outcome = {
  best : Pb_paql.Package.t option;
  best_objective : float option;
  examined : int;
  complete : bool;
}

exception Stop

type walk_state = {
  mutable examined : int;
  mutable best_mult : int array option;
  mutable best_obj : float option;
  mutable truncated : bool;
}

(* Enumerate multiplicity vectors of total cardinality within [lo, hi]
   and call [visit] on each. Branches that cannot reach [lo] with the
   remaining positions are cut. *)
let walk ~n ~max_mult ~lo ~hi visit =
  let mult = Array.make n 0 in
  let rec go i total =
    let remaining = (n - i) * max_mult in
    if total > hi || total + remaining < lo then ()
    else if i = n then visit mult
    else
      for m = 0 to max_mult do
        mult.(i) <- m;
        go (i + 1) (total + m);
        mult.(i) <- 0
      done
  in
  if lo <= hi then go 0 0

let objective_dir (c : Coeffs.t) =
  match c.query.objective with Some (dir, _) -> Some dir | None -> None

(* Objective of a candidate multiplicity vector, by compiled coefficients
   when linear, otherwise through the semantic oracle. *)
let objective_of c mult =
  match (c : Coeffs.t).objective with
  | None -> None
  | Some (Some _) -> Coeffs.objective_of_mult c mult
  | Some None -> Semantics.objective_value ~db:c.Coeffs.db c.query (Coeffs.package_of_mult c mult)

let search ?(use_pruning = true) ?(max_examined = 5_000_000) (c : Coeffs.t) =
  let nm = c.n * c.max_mult in
  let b =
    if use_pruning then Pruning.cardinality_bounds c
    else { Pruning.lo = 0; hi = nm }
  in
  let st =
    { examined = 0; best_mult = None; best_obj = None; truncated = false }
  in
  let dir = objective_dir c in
  let visit mult =
    if st.examined >= max_examined then begin
      st.truncated <- true;
      raise Stop
    end;
    st.examined <- st.examined + 1;
    if Coeffs.check_mult c mult then begin
      match dir with
      | None ->
          st.best_mult <- Some (Array.copy mult);
          raise Stop
      | Some dir -> (
          let obj = objective_of c mult in
          match (obj, st.best_obj) with
          | None, _ ->
              (* NULL objective (e.g. empty package): keep only if nothing
                 else was found. *)
              if st.best_mult = None then st.best_mult <- Some (Array.copy mult)
          | Some v, None ->
              st.best_mult <- Some (Array.copy mult);
              st.best_obj <- Some v
          | Some v, Some best ->
              if Semantics.better dir v best then begin
                st.best_mult <- Some (Array.copy mult);
                st.best_obj <- Some v
              end)
    end
  in
  (try walk ~n:c.n ~max_mult:c.max_mult ~lo:(max 0 b.lo) ~hi:(min nm b.hi) visit
   with Stop -> ());
  {
    best = Option.map (Coeffs.package_of_mult c) st.best_mult;
    best_objective = st.best_obj;
    examined = st.examined;
    complete = not st.truncated;
  }

let enumerate_valid ?(use_pruning = true) ?(limit = 10_000) (c : Coeffs.t) =
  let nm = c.n * c.max_mult in
  let b =
    if use_pruning then Pruning.cardinality_bounds c
    else { Pruning.lo = 0; hi = nm }
  in
  let out = ref [] and count = ref 0 in
  let visit mult =
    if Coeffs.check_mult c mult then begin
      out := Coeffs.package_of_mult c (Array.copy mult) :: !out;
      incr count;
      if !count >= limit then raise Stop
    end
  in
  (try walk ~n:c.n ~max_mult:c.max_mult ~lo:(max 0 b.lo) ~hi:(min nm b.hi) visit
   with Stop -> ());
  List.rev !out
