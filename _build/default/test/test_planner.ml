(* Tests for the new SQL surface (CASE, set operations, OFFSET, indexes)
   and the query planner (pushdown, index scans, hash joins), including a
   planner-vs-naive equivalence property. *)

module Parser = Pb_sql.Parser
module Ast = Pb_sql.Ast
module Executor = Pb_sql.Executor
module Database = Pb_sql.Database
module Planner = Pb_sql.Planner
module Index = Pb_sql.Index
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema

let setup_db () =
  let db = Database.create () in
  List.iter
    (fun sql -> ignore (Executor.execute_sql db sql))
    [
      "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT)";
      "INSERT INTO emp VALUES (1, 'ada', 'eng', 120), (2, 'bob', 'eng', 100), \
       (3, 'cyd', 'ops', 90), (4, 'dan', 'ops', 80), (5, 'eve', 'mgmt', 150)";
      "CREATE TABLE dept (dname TEXT, floor INT)";
      "INSERT INTO dept VALUES ('eng', 3), ('ops', 1), ('mgmt', 5)";
    ];
  db

let select db sql =
  match Executor.execute_sql db sql with
  | Executor.Rows r -> r
  | _ -> Alcotest.fail "expected rows"

let test_case_expression () =
  let db = setup_db () in
  let r =
    select db
      "SELECT name, CASE WHEN salary >= 120 THEN 'high' WHEN salary >= 90 \
       THEN 'mid' ELSE 'low' END AS band FROM emp ORDER BY id"
  in
  let bands =
    List.map (fun row -> Value.to_string row.(1)) (Relation.to_list r)
  in
  Alcotest.(check (list string)) "bands"
    [ "high"; "mid"; "mid"; "low"; "high" ]
    bands

let test_case_no_else_is_null () =
  let db = setup_db () in
  let r =
    select db
      "SELECT CASE WHEN salary > 1000 THEN 1 END AS x FROM emp WHERE id = 1"
  in
  Alcotest.(check bool) "null" true (Value.is_null (Relation.row r 0).(0))

let test_case_in_aggregate () =
  (* CASE inside SUM: counts conditional values — the idiom the vacation
     scenario could use instead of indicator columns. *)
  let db = setup_db () in
  let r =
    select db
      "SELECT SUM(CASE WHEN dept = 'eng' THEN salary ELSE 0 END) AS engsal \
       FROM emp"
  in
  Alcotest.(check bool) "220" true
    (Value.equal (Value.Int 220) (Relation.row r 0).(0))

let test_case_roundtrip () =
  let src =
    "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t"
  in
  let printed = Ast.select_to_string (Parser.parse_select src) in
  Alcotest.(check string) "fixpoint" printed
    (Ast.select_to_string (Parser.parse_select printed))

let test_union () =
  let db = setup_db () in
  let r =
    select db
      "SELECT dept FROM emp WHERE salary > 100 UNION SELECT dname FROM dept \
       WHERE floor = 1"
  in
  (* eng(120), mgmt(150) + ops = 3 distinct *)
  Alcotest.(check int) "3 rows" 3 (Relation.cardinality r)

let test_union_all_keeps_duplicates () =
  let db = setup_db () in
  let r =
    select db "SELECT dept FROM emp UNION ALL SELECT dname FROM dept"
  in
  Alcotest.(check int) "5 + 3" 8 (Relation.cardinality r)

let test_intersect_except () =
  let db = setup_db () in
  let r =
    select db
      "SELECT dept FROM emp INTERSECT SELECT dname FROM dept WHERE floor <= 3"
  in
  Alcotest.(check int) "eng, ops" 2 (Relation.cardinality r);
  let r2 =
    select db
      "SELECT dname FROM dept EXCEPT SELECT dept FROM emp WHERE salary < 145"
  in
  (* emp below 145: eng, ops -> remaining dept: mgmt *)
  Alcotest.(check int) "mgmt" 1 (Relation.cardinality r2);
  Alcotest.(check bool) "is mgmt" true
    (Value.equal (Value.Str "mgmt") (Relation.row r2 0).(0))

let test_set_op_numeric_equivalence () =
  let db = Database.create () in
  ignore (Executor.execute_sql db "CREATE TABLE a (x INT)");
  ignore (Executor.execute_sql db "INSERT INTO a VALUES (1), (2)");
  ignore (Executor.execute_sql db "CREATE TABLE b (x FLOAT)");
  ignore (Executor.execute_sql db "INSERT INTO b VALUES (1.0), (3.5)");
  let r = select db "SELECT x FROM a UNION SELECT x FROM b" in
  (* 1 and 1.0 dedup to a single row *)
  Alcotest.(check int) "3 distinct" 3 (Relation.cardinality r)

let test_set_op_arity_mismatch () =
  let db = setup_db () in
  match
    Executor.execute_sql db "SELECT id, name FROM emp UNION SELECT dname FROM dept"
  with
  | exception Executor.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_offset () =
  let db = setup_db () in
  let r =
    select db "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2"
  in
  Alcotest.(check int) "2 rows" 2 (Relation.cardinality r);
  Alcotest.(check bool) "starts at 3" true
    (Value.equal (Value.Int 3) (Relation.row r 0).(0))

let test_index_module () =
  let rel =
    Relation.create
      (Schema.make [ { Schema.name = "k"; ty = Value.T_int } ])
      (List.map (fun i -> [| Value.Int i |]) [ 5; 3; 8; 3; 1; Int.max_int ])
  in
  let idx = Index.build rel "k" in
  Alcotest.(check int) "cardinality" 6 (Index.cardinality idx);
  Alcotest.(check (list int)) "lookup 3" [ 1; 3 ] (Index.lookup idx (Value.Int 3));
  Alcotest.(check (list int)) "lookup miss" [] (Index.lookup idx (Value.Int 4));
  let in_range =
    Index.range ~lo:(Value.Int 3, true) ~hi:(Value.Int 5, true) idx
  in
  Alcotest.(check (list int)) "range [3,5]" [ 1; 3; 0 ] in_range;
  let above =
    Index.range ~lo:(Value.Int 5, false) idx
  in
  Alcotest.(check int) "exclusive lower" 2 (List.length above)

let test_index_skips_nulls () =
  let rel =
    Relation.create
      (Schema.make [ { Schema.name = "k"; ty = Value.T_int } ])
      [ [| Value.Int 1 |]; [| Value.Null |]; [| Value.Int 2 |] ]
  in
  let idx = Index.build rel "k" in
  Alcotest.(check int) "nulls excluded" 2 (Index.cardinality idx)

let test_create_index_sql () =
  let db = setup_db () in
  (match Executor.execute_sql db "CREATE INDEX ON emp (salary)" with
  | Executor.Created -> ()
  | _ -> Alcotest.fail "expected Created");
  Alcotest.(check (list string)) "declared" [ "salary" ]
    (Database.indexed_columns db "emp");
  (* queries still give correct answers through the index scan *)
  let r = select db "SELECT name FROM emp WHERE salary >= 100" in
  Alcotest.(check int) "3 rows" 3 (Relation.cardinality r);
  (* index survives until the table changes, then rebuilds *)
  ignore (Executor.execute_sql db "INSERT INTO emp VALUES (6, 'fay', 'eng', 130)");
  let r2 = select db "SELECT name FROM emp WHERE salary >= 100" in
  Alcotest.(check int) "4 rows after insert" 4 (Relation.cardinality r2)

let test_create_index_missing () =
  let db = setup_db () in
  match Executor.execute_sql db "CREATE INDEX ON emp (nope)" with
  | exception Executor.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected error"

let plan db sql =
  let q = Parser.parse_select sql in
  Planner.execute db
    ~eval:(fun schema row e -> Executor.eval_expr ~db schema row e)
    ~from:q.Ast.from ~where:q.Ast.where

let test_planner_uses_index () =
  let db = setup_db () in
  ignore (Executor.execute_sql db "CREATE INDEX ON emp (salary)");
  let _, stats = plan db "SELECT * FROM emp WHERE salary BETWEEN 90 AND 120" in
  Alcotest.(check int) "index scan" 1 stats.Planner.index_scans

let test_planner_hash_join () =
  let db = setup_db () in
  let rel, stats =
    plan db "SELECT * FROM emp e, dept d WHERE e.dept = d.dname AND d.floor > 1"
  in
  Alcotest.(check int) "hash join" 1 stats.Planner.hash_joins;
  Alcotest.(check int) "no product" 0 stats.Planner.nested_products;
  (* eng(2 emps, floor 3) + mgmt(1, floor 5) *)
  Alcotest.(check int) "3 rows" 3 (Relation.cardinality rel)

let test_planner_falls_back_to_product () =
  let db = setup_db () in
  let _, stats =
    plan db "SELECT * FROM emp e, dept d WHERE e.salary > d.floor * 20"
  in
  Alcotest.(check int) "product" 1 stats.Planner.nested_products;
  Alcotest.(check int) "no hash join" 0 stats.Planner.hash_joins

let test_planner_matches_naive () =
  (* Randomized equivalence: planner output = naive product+filter. *)
  let rng = Pb_util.Prng.create 2024 in
  for _trial = 1 to 40 do
    let db = Database.create () in
    let n1 = Pb_util.Prng.int_in rng 1 8 and n2 = Pb_util.Prng.int_in rng 1 8 in
    ignore (Executor.execute_sql db "CREATE TABLE t1 (a INT, b INT)");
    ignore (Executor.execute_sql db "CREATE TABLE t2 (c INT, d INT)");
    for _ = 1 to n1 do
      ignore
        (Executor.execute_sql db
           (Printf.sprintf "INSERT INTO t1 VALUES (%d, %d)"
              (Pb_util.Prng.int rng 4) (Pb_util.Prng.int rng 10)))
    done;
    for _ = 1 to n2 do
      ignore
        (Executor.execute_sql db
           (Printf.sprintf "INSERT INTO t2 VALUES (%d, %d)"
              (Pb_util.Prng.int rng 4) (Pb_util.Prng.int rng 10)))
    done;
    ignore (Executor.execute_sql db "CREATE INDEX ON t1 (b)");
    let where_variants =
      [|
        "t1.a = t2.c";
        "t1.a = t2.c AND t1.b <= 5";
        "t1.b >= 3 AND t2.d < 8";
        "t1.a = t2.c AND t1.b + t2.d < 12";
        "t1.b BETWEEN 2 AND 7";
        "t1.a < t2.c OR t1.b = t2.d";
      |]
    in
    let where = Pb_util.Prng.choice rng where_variants in
    let sql = "SELECT * FROM t1, t2 WHERE " ^ where in
    let q = Parser.parse_select sql in
    let eval schema row e = Executor.eval_expr ~db schema row e in
    let planned, _ =
      Planner.execute db ~eval ~from:q.Ast.from ~where:q.Ast.where
    in
    let naive = Planner.naive db ~eval ~from:q.Ast.from ~where:q.Ast.where in
    let canon rel =
      List.sort compare
        (List.map
           (fun row -> Array.to_list (Array.map Value.to_string row))
           (Relation.to_list rel))
    in
    Alcotest.(check (list (list string))) ("equivalent: " ^ where)
      (canon naive) (canon planned)
  done

let test_planner_pushdown_counts () =
  let db = setup_db () in
  let _, stats =
    plan db
      "SELECT * FROM emp e, dept d WHERE e.dept = d.dname AND e.salary > 90 \
       AND d.floor < 4"
  in
  Alcotest.(check bool) "pushed two single-table predicates" true
    (stats.Planner.pushed_predicates >= 2)

let suite =
  [
    Alcotest.test_case "case expression" `Quick test_case_expression;
    Alcotest.test_case "case without else" `Quick test_case_no_else_is_null;
    Alcotest.test_case "case in aggregate" `Quick test_case_in_aggregate;
    Alcotest.test_case "case roundtrip" `Quick test_case_roundtrip;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "union all" `Quick test_union_all_keeps_duplicates;
    Alcotest.test_case "intersect/except" `Quick test_intersect_except;
    Alcotest.test_case "set-op numeric equivalence" `Quick
      test_set_op_numeric_equivalence;
    Alcotest.test_case "set-op arity mismatch" `Quick test_set_op_arity_mismatch;
    Alcotest.test_case "offset" `Quick test_offset;
    Alcotest.test_case "index module" `Quick test_index_module;
    Alcotest.test_case "index skips nulls" `Quick test_index_skips_nulls;
    Alcotest.test_case "create index (sql)" `Quick test_create_index_sql;
    Alcotest.test_case "create index missing column" `Quick
      test_create_index_missing;
    Alcotest.test_case "planner uses index" `Quick test_planner_uses_index;
    Alcotest.test_case "planner hash join" `Quick test_planner_hash_join;
    Alcotest.test_case "planner product fallback" `Quick
      test_planner_falls_back_to_product;
    Alcotest.test_case "planner = naive (randomized)" `Quick
      test_planner_matches_naive;
    Alcotest.test_case "planner pushdown" `Quick test_planner_pushdown_counts;
  ]
