test/test_lp.ml: Alcotest Array Float Format List Pb_lp Pb_util Printf String
