test/test_util.ml: Alcotest Array Float Fun List Pb_util String
