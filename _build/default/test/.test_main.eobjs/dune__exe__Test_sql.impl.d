test/test_sql.ml: Alcotest Array Filename List Pb_relation Pb_sql Printf Sys
