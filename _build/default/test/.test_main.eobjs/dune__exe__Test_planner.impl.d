test/test_planner.ml: Alcotest Array Int List Pb_relation Pb_sql Pb_util Printf
