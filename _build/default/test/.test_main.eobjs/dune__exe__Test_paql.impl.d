test/test_paql.ml: Alcotest List Pb_paql Pb_relation Pb_sql Printf
