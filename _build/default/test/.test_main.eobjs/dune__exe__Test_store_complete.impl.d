test/test_store_complete.ml: Alcotest Array List Option Pb_core Pb_explore Pb_paql Pb_relation Pb_sql Pb_workload Printf
