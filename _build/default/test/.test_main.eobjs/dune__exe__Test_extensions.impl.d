test/test_extensions.ml: Alcotest Array List Pb_core Pb_lp Pb_paql Pb_sql Pb_util Pb_workload Printf String
