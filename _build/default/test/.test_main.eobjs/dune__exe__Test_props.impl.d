test/test_props.ml: Array Float List Pb_core Pb_lp Pb_paql Pb_relation Pb_sql Pb_util Printf QCheck QCheck_alcotest String
