test/test_shell.ml: Alcotest Array Filename Fun Pb_relation Pb_shell Pb_sql Pb_workload Printf String Sys
