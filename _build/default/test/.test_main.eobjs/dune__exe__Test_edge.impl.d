test/test_edge.ml: Alcotest Array Filename List Pb_core Pb_lp Pb_paql Pb_relation Pb_sql Pb_workload Printf String Sys
