test/test_relation.ml: Alcotest Array Pb_relation String
