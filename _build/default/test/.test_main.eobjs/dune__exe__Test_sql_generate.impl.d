test/test_sql_generate.ml: Alcotest List Pb_core Pb_paql Pb_relation Pb_sql Pb_util Printf
