test/test_props2.ml: Array Filename Float Fun List Pb_core Pb_explore Pb_lp Pb_paql Pb_relation Pb_sql Printf QCheck QCheck_alcotest String Sys
