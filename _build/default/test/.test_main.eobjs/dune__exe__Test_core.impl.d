test/test_core.ml: Alcotest Array List Option Pb_core Pb_paql Pb_relation Pb_sql Printf Result String
