test/test_workload.ml: Alcotest Array Float Hashtbl List Option Pb_core Pb_paql Pb_relation Pb_sql Pb_util Pb_workload Printf
