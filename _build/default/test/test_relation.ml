(* Unit tests for pb_relation: values, schemas, relations. *)

module Value = Pb_relation.Value
module Schema = Pb_relation.Schema
module Relation = Pb_relation.Relation

let v_int i = Value.Int i
let v_float f = Value.Float f
let v_str s = Value.Str s

let test_value_compare () =
  Alcotest.(check int) "int eq" 0 (Value.compare_values (v_int 3) (v_int 3));
  Alcotest.(check bool) "int lt" true
    (Value.compare_values (v_int 2) (v_int 3) < 0);
  Alcotest.(check int) "int/float numeric" 0
    (Value.compare_values (v_int 3) (v_float 3.0));
  Alcotest.(check bool) "float/int" true
    (Value.compare_values (v_float 2.5) (v_int 3) < 0);
  Alcotest.(check bool) "null first" true
    (Value.compare_values Value.Null (v_int 0) < 0);
  Alcotest.(check bool) "bool < number" true
    (Value.compare_values (Value.Bool true) (v_int 0) < 0);
  Alcotest.(check bool) "number < string" true
    (Value.compare_values (v_int 5) (v_str "a") < 0);
  Alcotest.(check bool) "string order" true
    (Value.compare_values (v_str "abc") (v_str "abd") < 0)

let test_value_arithmetic () =
  Alcotest.(check bool) "int add" true (Value.equal (v_int 5) (Value.add (v_int 2) (v_int 3)));
  Alcotest.(check bool) "mixed add is float" true
    (Value.equal (v_float 5.5) (Value.add (v_int 2) (v_float 3.5)));
  Alcotest.(check bool) "null propagates" true
    (Value.is_null (Value.add Value.Null (v_int 1)));
  Alcotest.(check bool) "div by zero is null" true
    (Value.is_null (Value.div (v_int 1) (v_int 0)));
  Alcotest.(check bool) "neg" true (Value.equal (v_int (-4)) (Value.neg (v_int 4)));
  Alcotest.check_raises "string add" (Value.Type_error "+: non-numeric operands (a, 1)")
    (fun () -> ignore (Value.add (v_str "a") (v_int 1)))

let test_value_logic () =
  let t = Value.Bool true and f = Value.Bool false and n = Value.Null in
  Alcotest.(check bool) "t and t" true (Value.equal t (Value.logical_and t t));
  Alcotest.(check bool) "f and null = false" true
    (Value.equal f (Value.logical_and f n));
  Alcotest.(check bool) "t and null = null" true
    (Value.is_null (Value.logical_and t n));
  Alcotest.(check bool) "t or null = true" true
    (Value.equal t (Value.logical_or t n));
  Alcotest.(check bool) "f or null = null" true
    (Value.is_null (Value.logical_or f n));
  Alcotest.(check bool) "not null = null" true
    (Value.is_null (Value.logical_not n));
  Alcotest.(check bool) "truthy true" true (Value.truthy t);
  Alcotest.(check bool) "truthy null" false (Value.truthy n);
  Alcotest.(check bool) "truthy int" false (Value.truthy (v_int 1))

let test_value_of_literal () =
  Alcotest.(check bool) "int" true (Value.equal (v_int 42) (Value.of_literal "42"));
  Alcotest.(check bool) "float" true
    (Value.equal (v_float 4.5) (Value.of_literal "4.5"));
  Alcotest.(check bool) "bool" true
    (Value.equal (Value.Bool true) (Value.of_literal "TRUE"));
  Alcotest.(check bool) "string" true
    (Value.equal (v_str "hello") (Value.of_literal "hello"));
  Alcotest.(check bool) "empty is null" true (Value.is_null (Value.of_literal ""))

let test_value_to_string () =
  Alcotest.(check string) "int" "7" (Value.to_string (v_int 7));
  Alcotest.(check string) "integral float" "3" (Value.to_string (v_float 3.0));
  Alcotest.(check string) "frac float" "3.25" (Value.to_string (v_float 3.25));
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null)

let mk_schema () =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.T_int };
      { Schema.name = "name"; ty = Value.T_str };
      { Schema.name = "score"; ty = Value.T_float };
    ]

let test_schema_lookup () =
  let s = mk_schema () in
  Alcotest.(check (option int)) "id" (Some 0) (Schema.index_of s "id");
  Alcotest.(check (option int)) "case-insensitive" (Some 1) (Schema.index_of s "NAME");
  Alcotest.(check (option int)) "missing" None (Schema.index_of s "nope");
  Alcotest.(check int) "arity" 3 (Schema.arity s)

let test_schema_qualified_lookup () =
  let s = Schema.qualify "r" (mk_schema ()) in
  Alcotest.(check (option int)) "qualified" (Some 0) (Schema.index_of s "r.id");
  Alcotest.(check (option int)) "suffix match" (Some 0) (Schema.index_of s "id");
  let joined = Schema.concat s (Schema.qualify "t" (mk_schema ())) in
  Alcotest.(check (option int)) "ambiguous suffix" None (Schema.index_of joined "id");
  Alcotest.(check (option int)) "disambiguated" (Some 3) (Schema.index_of joined "t.id")

let test_schema_duplicate () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema.make: duplicate column x") (fun () ->
      ignore
        (Schema.make
           [
             { Schema.name = "x"; ty = Value.T_int };
             { Schema.name = "X"; ty = Value.T_str };
           ]))

let mk_rel () =
  Relation.create (mk_schema ())
    [
      [| v_int 1; v_str "a"; v_float 1.5 |];
      [| v_int 2; v_str "b"; v_float 2.5 |];
      [| v_int 3; v_str "c"; v_float 3.5 |];
    ]

let test_relation_basics () =
  let r = mk_rel () in
  Alcotest.(check int) "cardinality" 3 (Relation.cardinality r);
  Alcotest.(check bool) "get" true (Value.equal (v_str "b") (Relation.get r 1 "name"));
  Alcotest.(check int) "filter" 2
    (Relation.cardinality
       (Relation.filter (fun row -> Value.compare_values row.(0) (v_int 1) > 0) r))

let test_relation_arity_mismatch () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Relation: row arity 2 does not match schema arity 3")
    (fun () -> ignore (Relation.create (mk_schema ()) [ [| v_int 1; v_int 2 |] ]))

let test_relation_project () =
  let r = Relation.project (mk_rel ()) [ "score"; "id" ] in
  Alcotest.(check int) "arity" 2 (Schema.arity (Relation.schema r));
  Alcotest.(check bool) "order" true
    (Value.equal (v_float 1.5) (Relation.row r 0).(0))

let test_relation_product () =
  let r = Relation.rename "a" (mk_rel ()) in
  let s = Relation.rename "b" (mk_rel ()) in
  let p = Relation.product r s in
  Alcotest.(check int) "9 rows" 9 (Relation.cardinality p);
  Alcotest.(check int) "6 cols" 6 (Schema.arity (Relation.schema p))

let test_relation_sort () =
  let r = mk_rel () in
  let sorted =
    Relation.sort_by
      (fun a b -> Value.compare_values b.(0) a.(0))
      r
  in
  Alcotest.(check bool) "descending" true
    (Value.equal (v_int 3) (Relation.row sorted 0).(0))

let test_column_stats () =
  let r = mk_rel () in
  match Relation.column_stats r "score" with
  | Some (lo, hi, sum) ->
      Alcotest.(check (float 1e-9)) "min" 1.5 lo;
      Alcotest.(check (float 1e-9)) "max" 3.5 hi;
      Alcotest.(check (float 1e-9)) "sum" 7.5 sum
  | None -> Alcotest.fail "expected stats"

let test_column_stats_text () =
  Alcotest.(check bool) "text has no stats" true
    (Relation.column_stats (mk_rel ()) "name" = None)

let test_append () =
  let r = Relation.append (mk_rel ()) [ [| v_int 4; v_str "d"; v_float 4.5 |] ] in
  Alcotest.(check int) "grown" 4 (Relation.cardinality r)

let test_to_table_elision () =
  let s = Relation.to_table ~max_rows:2 (mk_rel ()) in
  Alcotest.(check bool) "elided note" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 4 <= String.length s
      && (String.sub s i 4 = "more" || contains (i + 1))
    in
    contains 0)

let suite =
  [
    Alcotest.test_case "value compare" `Quick test_value_compare;
    Alcotest.test_case "value arithmetic" `Quick test_value_arithmetic;
    Alcotest.test_case "value 3-valued logic" `Quick test_value_logic;
    Alcotest.test_case "value of_literal" `Quick test_value_of_literal;
    Alcotest.test_case "value to_string" `Quick test_value_to_string;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "schema qualified lookup" `Quick test_schema_qualified_lookup;
    Alcotest.test_case "schema duplicate" `Quick test_schema_duplicate;
    Alcotest.test_case "relation basics" `Quick test_relation_basics;
    Alcotest.test_case "relation arity mismatch" `Quick test_relation_arity_mismatch;
    Alcotest.test_case "relation project" `Quick test_relation_project;
    Alcotest.test_case "relation product" `Quick test_relation_product;
    Alcotest.test_case "relation sort" `Quick test_relation_sort;
    Alcotest.test_case "column stats" `Quick test_column_stats;
    Alcotest.test_case "column stats text" `Quick test_column_stats_text;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "to_table elision" `Quick test_to_table_elision;
  ]
