(* Tests for the PaQL front end: parser, pretty-printer, analysis
   (linearization, well-formedness), packages, and reference semantics. *)

module Parser = Pb_paql.Parser
module Ast = Pb_paql.Ast
module Analyze = Pb_paql.Analyze
module Package = Pb_paql.Package
module Semantics = Pb_paql.Semantics
module Sql = Pb_sql.Ast
module Value = Pb_relation.Value
module Relation = Pb_relation.Relation
module Schema = Pb_relation.Schema

let paper_query =
  "SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.gluten = 'free' SUCH THAT \
   COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE \
   SUM(P.protein)"

let test_parse_paper_query () =
  let q = Parser.parse paper_query in
  Alcotest.(check string) "relation" "recipes" q.Ast.input_relation;
  Alcotest.(check string) "alias" "r" q.Ast.input_alias;
  Alcotest.(check string) "package alias" "p" q.Ast.package_alias;
  Alcotest.(check bool) "has where" true (q.Ast.where <> None);
  Alcotest.(check bool) "has such that" true (q.Ast.such_that <> None);
  Alcotest.(check bool) "maximize" true
    (match q.Ast.objective with Some (Ast.Maximize, _) -> true | _ -> false);
  Alcotest.(check int) "no repeat -> multiplicity 1" 1 (Ast.max_multiplicity q)

let test_parse_repeat () =
  let q =
    Parser.parse "SELECT PACKAGE(r) FROM recipes r REPEAT 2 SUCH THAT COUNT(*) = 3"
  in
  Alcotest.(check (option int)) "repeat" (Some 2) q.Ast.repeat;
  Alcotest.(check int) "multiplicity 3" 3 (Ast.max_multiplicity q)

let test_parse_minimal () =
  let q = Parser.parse "SELECT PACKAGE(t) FROM things t" in
  Alcotest.(check bool) "no clauses" true
    (q.Ast.where = None && q.Ast.such_that = None && q.Ast.objective = None);
  Alcotest.(check string) "default package alias" "package" q.Ast.package_alias

let test_parse_default_alias () =
  let q = Parser.parse "SELECT PACKAGE(things) FROM things" in
  Alcotest.(check string) "alias = table" "things" q.Ast.input_alias

let test_parse_minimize () =
  let q =
    Parser.parse
      "SELECT PACKAGE(r) FROM recipes r SUCH THAT COUNT(*) = 2 MINIMIZE SUM(r.fat)"
  in
  Alcotest.(check bool) "minimize" true
    (match q.Ast.objective with Some (Ast.Minimize, _) -> true | _ -> false)

let test_roundtrip () =
  let q1 = Parser.parse paper_query in
  let printed = Ast.to_string q1 in
  let q2 = Parser.parse printed in
  Alcotest.(check string) "print-parse-print fixpoint" printed (Ast.to_string q2)

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("expected error: " ^ src))
    [
      "SELECT * FROM t";
      "SELECT PACKAGE(x) FROM recipes r";  (* package arg mismatch *)
      "SELECT PACKAGE(r) FROM recipes r REPEAT -1";
      "SELECT PACKAGE(r) FROM recipes r SUCH";
      "SELECT PACKAGE(r) FROM recipes r SUCH THAT";
      "SELECT PACKAGE(r) FROM recipes r garbage";
    ]

(* ---- linearization -------------------------------------------------- *)

let lin src =
  Analyze.linearize (Pb_sql.Parser.parse_expr src)

let test_linearize_count () =
  match lin "COUNT(*) = 3" with
  | Ok (Analyze.And [ Analyze.Atom (Analyze.Linear a); Analyze.Atom (Analyze.Linear b) ]) ->
      Alcotest.(check bool) "le" true (a.cmp = Analyze.Le && a.rhs = 3.0);
      Alcotest.(check bool) "ge" true (b.cmp = Analyze.Ge && b.rhs = 3.0)
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_between () =
  match lin "SUM(p.calories) BETWEEN 2000 AND 2500" with
  | Ok (Analyze.And [ Analyze.Atom (Analyze.Linear a); Analyze.Atom (Analyze.Linear b) ]) ->
      Alcotest.(check bool) "ge 2000" true (a.cmp = Analyze.Ge && a.rhs = 2000.0);
      Alcotest.(check bool) "le 2500" true (b.cmp = Analyze.Le && b.rhs = 2500.0)
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_not_pushes () =
  match lin "NOT (SUM(p.x) <= 10)" with
  | Ok (Analyze.Atom (Analyze.Linear a)) ->
      Alcotest.(check bool) "flipped to >" true (a.cmp = Analyze.Gt && a.rhs = 10.0)
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_combination () =
  (* 2*SUM(x) - SUM(y) + 1 <= 7  ->  terms with rhs 6 *)
  match lin "2 * SUM(p.x) - SUM(p.y) + 1 <= 7" with
  | Ok (Analyze.Atom (Analyze.Linear a)) ->
      Alcotest.(check int) "two terms" 2 (List.length a.terms);
      Alcotest.(check (float 1e-9)) "rhs" 6.0 a.rhs
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_avg () =
  match lin "AVG(p.x) >= 5" with
  | Ok (Analyze.Atom (Analyze.Avg_atom a)) ->
      Alcotest.(check bool) "avg ge 5" true (a.cmp = Analyze.Ge && a.rhs = 5.0)
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_min_max () =
  (match lin "MIN(p.x) >= 5" with
  | Ok (Analyze.Atom (Analyze.Extremum e)) ->
      Alcotest.(check bool) "min" true (not e.maximum)
  | _ -> Alcotest.fail "expected extremum");
  match lin "MAX(p.x) <= 9" with
  | Ok (Analyze.Atom (Analyze.Extremum e)) ->
      Alcotest.(check bool) "max" true e.maximum
  | _ -> Alcotest.fail "expected extremum"

let test_linearize_negated_coefficient () =
  (* -2 * AVG(p.x) <= -10  <=>  AVG(p.x) >= 5 *)
  match lin "-2 * AVG(p.x) <= -10" with
  | Ok (Analyze.Atom (Analyze.Avg_atom a)) ->
      Alcotest.(check bool) "flipped" true (a.cmp = Analyze.Ge);
      Alcotest.(check (float 1e-9)) "rhs" 5.0 a.rhs
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_or () =
  match lin "COUNT(*) = 2 OR SUM(p.x) >= 50" with
  | Ok (Analyze.Or [ _; _ ]) -> ()
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_neq_is_disjunction () =
  match lin "COUNT(*) <> 3" with
  | Ok (Analyze.Or [ _; _ ]) -> ()
  | Ok f -> Alcotest.fail ("unexpected: " ^ Analyze.formula_to_string f)
  | Error e -> Alcotest.fail e

let test_linearize_rejects () =
  List.iter
    (fun src ->
      match lin src with
      | Error _ -> ()
      | Ok f ->
          Alcotest.fail
            (Printf.sprintf "expected opaque: %s -> %s" src
               (Analyze.formula_to_string f)))
    [
      "SUM(p.x) * SUM(p.y) <= 10";
      "SUM(p.x) / COUNT(*) <= 10";
      "AVG(p.x) + COUNT(*) <= 10";
      "p.x <= 10";
      "MIN(p.x) + MAX(p.y) <= 3";
    ]

let test_linearize_constant_folding () =
  (match lin "1 + 1 = 2" with
  | Ok Analyze.True -> ()
  | _ -> Alcotest.fail "expected True");
  match lin "1 = 2" with
  | Ok Analyze.False -> ()
  | _ -> Alcotest.fail "expected False"

let test_objective_linearization () =
  (match Analyze.linearize_objective (Pb_sql.Parser.parse_expr "SUM(p.protein)") with
  | Ok [ (c, Analyze.Sum_term _) ] -> Alcotest.(check (float 1e-9)) "coef" 1.0 c
  | _ -> Alcotest.fail "expected single sum term");
  (match Analyze.linearize_objective (Pb_sql.Parser.parse_expr "COUNT(*) - 0.5 * SUM(p.fat)") with
  | Ok [ _; _ ] -> ()
  | _ -> Alcotest.fail "expected two terms");
  match Analyze.linearize_objective (Pb_sql.Parser.parse_expr "MIN(p.x)") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "MIN objective should be rejected"

let test_query_wellformedness () =
  let bad_where =
    Parser.parse "SELECT PACKAGE(r) FROM t r WHERE SUM(r.x) > 3"
  in
  (match Analyze.validate_query bad_where with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "aggregate in WHERE should be rejected");
  let bad_alias =
    Parser.parse "SELECT PACKAGE(r) AS p FROM t r WHERE q.x > 3"
  in
  (match Analyze.validate_query bad_alias with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "foreign alias in WHERE should be rejected");
  let bad_global =
    Parser.parse "SELECT PACKAGE(r) AS p FROM t r SUCH THAT SUM(r.x) > 3"
  in
  (match Analyze.validate_query bad_global with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "input alias in SUCH THAT should be rejected");
  match Analyze.validate_query (Parser.parse paper_query) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---- packages ------------------------------------------------------- *)

let small_rel () =
  Relation.create
    (Schema.make
       [
         { Schema.name = "id"; ty = Value.T_int };
         { Schema.name = "x"; ty = Value.T_int };
       ])
    [
      [| Value.Int 1; Value.Int 10 |];
      [| Value.Int 2; Value.Int 20 |];
      [| Value.Int 3; Value.Int 30 |];
    ]

let test_package_basics () =
  let rel = small_rel () in
  let p = Package.of_indices rel ~alias:"p" [ 0; 2; 2 ] in
  Alcotest.(check int) "cardinality" 3 (Package.cardinality p);
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Package.support p);
  Alcotest.(check (list int)) "indices" [ 0; 2; 2 ] (Package.indices p);
  Alcotest.(check int) "mult" 2 (Package.multiplicity p 2);
  Alcotest.(check (float 1e-9)) "sum x" 70.0 (Package.sum_column p "x")

let test_package_updates () =
  let rel = small_rel () in
  let p = Package.of_indices rel ~alias:"p" [ 0 ] in
  let p = Package.add p 1 in
  Alcotest.(check int) "after add" 2 (Package.cardinality p);
  let p = Package.replace p ~out_index:0 ~in_index:2 in
  Alcotest.(check (list int)) "after replace" [ 1; 2 ] (Package.support p);
  let p = Package.remove p 1 in
  Alcotest.(check (list int)) "after remove" [ 2 ] (Package.support p);
  Alcotest.check_raises "remove absent"
    (Invalid_argument "Package.remove: tuple not in package") (fun () ->
      ignore (Package.remove p 0))

let test_package_materialize () =
  let rel = small_rel () in
  let p = Package.of_indices rel ~alias:"pk" [ 1; 1 ] in
  let m = Package.materialize p in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality m);
  Alcotest.(check bool) "alias-qualified" true
    (Schema.index_of (Relation.schema m) "pk.x" <> None)

let test_package_validation_errors () =
  let rel = small_rel () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Package.of_multiplicities: negative") (fun () ->
      ignore (Package.of_multiplicities rel ~alias:"p" [| 1; -1; 0 |]));
  Alcotest.check_raises "length"
    (Invalid_argument "Package.of_multiplicities: length mismatch") (fun () ->
      ignore (Package.of_multiplicities rel ~alias:"p" [| 1 |]))

(* ---- semantics ------------------------------------------------------ *)

let demo_db () =
  let db = Pb_sql.Database.create () in
  Pb_sql.Database.put db "recipes"
    (Relation.create
       (Schema.make
          [
            { Schema.name = "id"; ty = Value.T_int };
            { Schema.name = "gluten"; ty = Value.T_str };
            { Schema.name = "calories"; ty = Value.T_int };
            { Schema.name = "protein"; ty = Value.T_int };
          ])
       [
         [| Value.Int 1; Value.Str "free"; Value.Int 800; Value.Int 30 |];
         [| Value.Int 2; Value.Str "free"; Value.Int 700; Value.Int 25 |];
         [| Value.Int 3; Value.Str "full"; Value.Int 600; Value.Int 40 |];
         [| Value.Int 4; Value.Str "free"; Value.Int 900; Value.Int 10 |];
         [| Value.Int 5; Value.Str "free"; Value.Int 400; Value.Int 35 |];
       ]);
  db

let test_candidates_apply_base_constraints () =
  let db = demo_db () in
  let q = Parser.parse "SELECT PACKAGE(r) AS p FROM recipes r WHERE r.gluten = 'free'" in
  let c = Semantics.candidates db q in
  Alcotest.(check int) "4 gluten-free" 4 (Relation.cardinality c)

let test_validate_package () =
  let db = demo_db () in
  let q =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r WHERE r.gluten = 'free' SUCH \
       THAT COUNT(*) = 2 AND SUM(p.calories) <= 1600"
  in
  let cand = Semantics.candidates db q in
  (* candidates (by original id): 1, 2, 4, 5 -> indices 0..3 *)
  let good = Package.of_indices cand ~alias:"p" [ 0; 1 ] in
  Alcotest.(check bool) "800+700 valid" true (Semantics.is_valid ~db q good);
  let too_many = Package.of_indices cand ~alias:"p" [ 0; 1; 3 ] in
  Alcotest.(check bool) "count violated" false (Semantics.is_valid ~db q too_many);
  let too_heavy = Package.of_indices cand ~alias:"p" [ 0; 2 ] in
  Alcotest.(check bool) "800+900 too heavy" false
    (Semantics.is_valid ~db q too_heavy)

let test_empty_package_semantics () =
  let db = demo_db () in
  let q =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT SUM(p.calories) <= 100000"
  in
  let cand = Semantics.candidates db q in
  let empty = Package.create cand ~alias:"p" in
  (* SUM over empty is NULL -> constraint unsatisfied, SQL-style. *)
  Alcotest.(check bool) "empty fails SUM constraint" false
    (Semantics.is_valid ~db q empty);
  let q_count = Parser.parse "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT COUNT(*) = 0" in
  let empty2 = Package.create (Semantics.candidates db q_count) ~alias:"p" in
  Alcotest.(check bool) "COUNT(*)=0 accepts empty" true
    (Semantics.is_valid ~db q_count empty2)

let test_multiplicity_enforcement () =
  let db = demo_db () in
  let q = Parser.parse "SELECT PACKAGE(r) AS p FROM recipes r SUCH THAT COUNT(*) = 2" in
  let cand = Semantics.candidates db q in
  let doubled = Package.of_indices cand ~alias:"p" [ 0; 0 ] in
  Alcotest.(check bool) "no repeat" false (Semantics.is_valid ~db q doubled);
  let q2 =
    Parser.parse
      "SELECT PACKAGE(r) AS p FROM recipes r REPEAT 1 SUCH THAT COUNT(*) = 2"
  in
  Alcotest.(check bool) "repeat 1 allows double" true
    (Semantics.is_valid ~db q2 (Package.of_indices (Semantics.candidates db q2) ~alias:"p" [ 0; 0 ]))

let test_objective_value () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  (* paper query against demo data: 3 free recipes, 2000..2500 cal *)
  let cand = Semantics.candidates db q in
  let pkg = Package.of_indices cand ~alias:"p" [ 0; 1; 2 ] in
  (* 800+700+900 = 2400 cal, protein 30+25+10 = 65 *)
  Alcotest.(check bool) "valid" true (Semantics.is_valid ~db q pkg);
  Alcotest.(check (option (float 1e-9))) "objective" (Some 65.0)
    (Semantics.objective_value ~db q pkg)

let test_compare_quality () =
  let db = demo_db () in
  let q = Parser.parse paper_query in
  let cand = Semantics.candidates db q in
  let a = Package.of_indices cand ~alias:"p" [ 0; 1; 2 ] in (* protein 65 *)
  let b = Package.of_indices cand ~alias:"p" [ 0; 1; 3 ] in (* 800+700+400, protein 90 — but 1900 cal, invalid; quality ignores validity *)
  Alcotest.(check bool) "b preferred on objective" true
    (Semantics.compare_quality q b a > 0)

let suite =
  [
    Alcotest.test_case "parse paper query" `Quick test_parse_paper_query;
    Alcotest.test_case "parse repeat" `Quick test_parse_repeat;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parse default alias" `Quick test_parse_default_alias;
    Alcotest.test_case "parse minimize" `Quick test_parse_minimize;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "linearize count" `Quick test_linearize_count;
    Alcotest.test_case "linearize between" `Quick test_linearize_between;
    Alcotest.test_case "linearize NOT pushes" `Quick test_linearize_not_pushes;
    Alcotest.test_case "linearize combination" `Quick test_linearize_combination;
    Alcotest.test_case "linearize avg" `Quick test_linearize_avg;
    Alcotest.test_case "linearize min/max" `Quick test_linearize_min_max;
    Alcotest.test_case "linearize negated coefficient" `Quick
      test_linearize_negated_coefficient;
    Alcotest.test_case "linearize or" `Quick test_linearize_or;
    Alcotest.test_case "linearize <> disjunction" `Quick
      test_linearize_neq_is_disjunction;
    Alcotest.test_case "linearize rejects non-linear" `Quick test_linearize_rejects;
    Alcotest.test_case "linearize constant folding" `Quick
      test_linearize_constant_folding;
    Alcotest.test_case "objective linearization" `Quick test_objective_linearization;
    Alcotest.test_case "query well-formedness" `Quick test_query_wellformedness;
    Alcotest.test_case "package basics" `Quick test_package_basics;
    Alcotest.test_case "package updates" `Quick test_package_updates;
    Alcotest.test_case "package materialize" `Quick test_package_materialize;
    Alcotest.test_case "package validation errors" `Quick
      test_package_validation_errors;
    Alcotest.test_case "candidates apply base constraints" `Quick
      test_candidates_apply_base_constraints;
    Alcotest.test_case "validate package" `Quick test_validate_package;
    Alcotest.test_case "empty package semantics" `Quick test_empty_package_semantics;
    Alcotest.test_case "multiplicity enforcement" `Quick
      test_multiplicity_enforcement;
    Alcotest.test_case "objective value" `Quick test_objective_value;
    Alcotest.test_case "compare quality" `Quick test_compare_quality;
  ]
