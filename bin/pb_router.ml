(* pb_router — shared-nothing front end for a set of pb_server shards.

     pb_server --port 7971 --shard 0/2 &
     pb_server --port 7972 --shard 1/2 &
     pb_router --port 7878 --shard 127.0.0.1:7971 --shard 127.0.0.1:7972

   Speaks wire v2 on both sides: clients connect exactly as they would
   to a pb_server; SQL fans out with partial-aggregate merge where the
   query allows it, PaQL runs as router-level sketch + shard-grouped
   refine. --metrics-port serves /metrics plus a /healthz that
   aggregates per-shard health. *)

open Cmdliner

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")

let port_arg =
  Arg.(
    value & opt int 7878
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:"TCP port; 0 picks an ephemeral port (printed on startup).")

let shards_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "shard" ] ~docv:"HOST:PORT"
        ~doc:
          "Shard endpoint (repeatable, in order: the $(i,k)-th occurrence \
           is shard $(i,k) and must be the server started with \
           $(b,--shard) $(i,k)/N).")

let max_conns_arg =
  Arg.(
    value & opt int 64
    & info [ "max-conns" ] ~docv:"N" ~doc:"Maximum live client connections.")

let max_inflight_arg =
  Arg.(
    value & opt int 64
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"Maximum requests evaluating concurrently.")

let max_queue_arg =
  Arg.(
    value & opt int 128
    & info [ "max-queue" ] ~docv:"N" ~doc:"Admission queue depth.")

let deadline_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Default per-request deadline; the remaining budget is \
           propagated to every shard hop. 0 disables the default.")

let connect_timeout_arg =
  Arg.(
    value & opt float 2.0
    & info [ "connect-timeout" ] ~docv:"SECONDS"
        ~doc:"Bound on each shard TCP connect (and health probe). 0 = none.")

let metrics_port_arg =
  Arg.(
    value & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve GET /metrics (including per-shard fan-out latency \
           histograms) and /healthz (aggregated per-shard health) over \
           HTTP/1.1 on this port; 0 picks an ephemeral one.")

let serve_mode_arg =
  Arg.(
    value
    & opt (enum [ ("event", Pb_net.Server.Event); ("threads", Pb_net.Server.Threads) ])
        Pb_net.Server.Event
    & info [ "serve-mode" ] ~docv:"MODE"
        ~doc:"Client connection handling: $(b,event) (default) or $(b,threads).")

let parse_endpoint spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some port when host <> "" -> (host, port)
      | _ -> failwith (Printf.sprintf "--shard expects HOST:PORT, got %S" spec))
  | None -> failwith (Printf.sprintf "--shard expects HOST:PORT, got %S" spec)

let serve host port shards max_conns max_inflight max_queue deadline
    connect_timeout metrics_port serve_mode =
  let shards = Array.of_list (List.map parse_endpoint shards) in
  let connect_timeout =
    if connect_timeout > 0.0 then Some connect_timeout else None
  in
  let local = Pb_sql.Database.create () in
  let router =
    match Pb_shard.Router.create ?connect_timeout ~shards local with
    | r -> r
    | exception Failure msg ->
        Printf.eprintf "pb_router: %s\n" msg;
        exit 1
  in
  let config =
    {
      Pb_net.Server.default_config with
      host;
      port;
      max_connections = max_conns;
      max_inflight;
      max_queue;
      default_deadline = (if deadline > 0.0 then Some deadline else None);
      plan_cache_capacity = 0;
      serve_mode;
    }
  in
  let server =
    Pb_net.Server.start ~config
      ~session_factory:(Pb_shard.Router.session_factory router)
      local
  in
  Pb_net.Server.install_signal_handlers server;
  Printf.printf "pb_router listening on %s:%d (pid %d, %d shards)\n" host
    (Pb_net.Server.port server) (Unix.getpid ()) (Array.length shards);
  let http =
    match metrics_port with
    | Some p ->
        let handler path =
          if path = "/healthz" then
            Some
              {
                Pb_obs.Http.code = 200;
                content_type = "application/json";
                body = Pb_shard.Router.health_json router;
              }
          else Pb_net.Server.http_handler server path
        in
        let h = Pb_obs.Http.start ~host ~port:p handler in
        Printf.printf "pb_router metrics on http://%s:%d\n" host
          (Pb_obs.Http.port h);
        Some h
    | None -> None
  in
  print_string "pb_router ready\n";
  flush stdout;
  Pb_net.Server.join server;
  Option.iter Pb_obs.Http.stop http;
  Pb_shard.Router.close router;
  print_endline "pb_router stopped";
  flush stdout

let cmd =
  let term =
    Term.(
      const serve $ host_arg $ port_arg $ shards_arg $ max_conns_arg
      $ max_inflight_arg $ max_queue_arg $ deadline_arg $ connect_timeout_arg
      $ metrics_port_arg $ serve_mode_arg)
  in
  Cmd.v
    (Cmd.info "pb_router" ~version:"1.0.0"
       ~doc:"Shared-nothing router over pb_server shards (wire v2 both ways)")
    term

let () = exit (Cmd.eval cmd)
