#!/bin/sh
# Local CI driver: the checks a change must pass before it lands.
#   bin/ci.sh            -- typecheck, build, tests
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check (typecheck) =="
dune build @check

echo "== dune build (full build) =="
dune build

echo "== dune runtest =="
dune runtest

echo "CI OK"
