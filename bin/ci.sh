#!/bin/sh
# Local CI driver: the checks a change must pass before it lands.
#   bin/ci.sh            -- typecheck, build, tests (sequential + 8-domain)
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check (typecheck) =="
dune build @check

echo "== dune build (full build) =="
dune build

echo "== dune runtest (PB_DOMAINS=1) =="
dune runtest

# The parallel evaluation layer must be invisible in test output: the
# same suite, same seed, run on an 8-domain pool has to produce the
# same results test-by-test. Run the built binary directly (no dune
# noise), normalise timings away, and fail on any difference.
echo "== determinism: test output identical at PB_DOMAINS=1 vs 8 =="
mkdir -p _build/ci
normalize() {
  sed -e 's/[0-9][0-9]*\.[0-9][0-9]*s/<time>/g' \
      -e "s/run has ID \`[A-Z0-9]*'/run has ID <id>/" "$1"
}
QCHECK_SEED=20260806 PB_DOMAINS=1 ./_build/default/test/test_main.exe \
  >_build/ci/run_d1.txt 2>&1
QCHECK_SEED=20260806 PB_DOMAINS=8 ./_build/default/test/test_main.exe \
  >_build/ci/run_d8.txt 2>&1
normalize _build/ci/run_d1.txt >_build/ci/run_d1.norm
normalize _build/ci/run_d8.txt >_build/ci/run_d8.norm
if ! diff -u _build/ci/run_d1.norm _build/ci/run_d8.norm; then
  echo "CI FAIL: test output differs between PB_DOMAINS=1 and PB_DOMAINS=8"
  exit 1
fi

# Storage-engine differential gate: the same scripted session (DDL, DML,
# duplicate rows, NULLs, scans, joins, grouped aggregates) replayed
# against a PB_STORE=row server and a PB_STORE=columnar server must
# produce byte-identical transcripts — the columnar engine is only
# allowed to be faster, never different. The columnar server also
# exposes /metrics, where the resident-bytes gauge must show the
# storage subsystem actually engaged (tables converted and cached).
echo "== storage differential (PB_STORE=row vs columnar transcripts) =="
ROW_LOG=_build/ci/store_row_server.log
COL_LOG=_build/ci/store_col_server.log
PB_STORE=row ./_build/default/bin/pb_server.exe --port 0 --size 80 \
  --seed 7 >"$ROW_LOG" 2>&1 &
ROW_PID=$!
PB_STORE=columnar ./_build/default/bin/pb_server.exe --port 0 --size 80 \
  --seed 7 --metrics-port 0 >"$COL_LOG" 2>&1 &
COL_PID=$!
for log in "$ROW_LOG" "$COL_LOG"; do
  i=0
  while [ $i -lt 100 ]; do
    grep -q "pb_server ready" "$log" 2>/dev/null && break
    i=$((i + 1))
    sleep 0.1
  done
done
ROW_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$ROW_LOG")
COL_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$COL_LOG")
if [ -z "$ROW_PORT" ] || [ -z "$COL_PORT" ]; then
  echo "CI FAIL: storage differential servers did not come up; logs follow"
  cat "$ROW_LOG" "$COL_LOG"
  kill "$ROW_PID" "$COL_PID" 2>/dev/null || true
  exit 1
fi
./_build/default/bin/pb_client.exe --port "$ROW_PORT" --echo \
  <test/smoke/store_session.txt >_build/ci/store_row.txt 2>&1
./_build/default/bin/pb_client.exe --port "$COL_PORT" --echo \
  <test/smoke/store_session.txt >_build/ci/store_col.txt 2>&1
normalize _build/ci/store_row.txt >_build/ci/store_row.norm
normalize _build/ci/store_col.txt >_build/ci/store_col.norm
if ! diff -u _build/ci/store_row.norm _build/ci/store_col.norm; then
  echo "CI FAIL: PB_STORE=row and PB_STORE=columnar transcripts differ"
  kill "$ROW_PID" "$COL_PID" 2>/dev/null || true
  exit 1
fi
STORE_METRICS_PORT=$(sed -n \
  's|.*metrics on http://127.0.0.1:\([0-9]*\).*|\1|p' "$COL_LOG")
curl -sf "http://127.0.0.1:$STORE_METRICS_PORT/metrics" \
  >_build/ci/store_scrape.txt || {
  echo "CI FAIL: curl /metrics on the columnar server failed"
  kill "$ROW_PID" "$COL_PID" 2>/dev/null || true
  exit 1
}
STORE_BYTES=$(sed -n 's/^pb_store_bytes_resident \([0-9][0-9]*\).*/\1/p' \
  _build/ci/store_scrape.txt | head -n 1)
if [ -z "$STORE_BYTES" ] || [ "$STORE_BYTES" -lt 1 ]; then
  echo "CI FAIL: expected pb_store_bytes_resident > 0 on the columnar"
  echo "         server; /metrics reported: ${STORE_BYTES:-no gauge}"
  kill "$ROW_PID" "$COL_PID" 2>/dev/null || true
  exit 1
fi
kill -TERM "$ROW_PID" "$COL_PID"
STORE_EXIT=0
wait "$ROW_PID" || STORE_EXIT=$?
if [ "$STORE_EXIT" -ne 0 ]; then
  echo "CI FAIL: row-store pb_server exited $STORE_EXIT on SIGTERM (expected 0)"
  exit 1
fi
wait "$COL_PID" || STORE_EXIT=$?
if [ "$STORE_EXIT" -ne 0 ]; then
  echo "CI FAIL: columnar pb_server exited $STORE_EXIT on SIGTERM (expected 0)"
  exit 1
fi

# Serving-path smoke test: boot pb_server on an ephemeral port with a
# fixed synthetic workload, replay a scripted pb_client session, and
# diff the (timing-normalised) transcript against the checked-in
# expectation. Then SIGTERM the server and require a clean exit.
echo "== server smoke test (pb_server + scripted pb_client session) =="
SMOKE_LOG=_build/ci/smoke_server.log
./_build/default/bin/pb_server.exe --port 0 --size 80 --seed 7 \
  --metrics-port 0 >"$SMOKE_LOG" 2>&1 &
SMOKE_PID=$!
i=0
while [ $i -lt 100 ]; do
  grep -q "pb_server ready" "$SMOKE_LOG" 2>/dev/null && break
  i=$((i + 1))
  sleep 0.1
done
SMOKE_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$SMOKE_LOG")
if [ -z "$SMOKE_PORT" ]; then
  echo "CI FAIL: pb_server did not come up; log follows"
  cat "$SMOKE_LOG"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi
./_build/default/bin/pb_client.exe --port "$SMOKE_PORT" --echo \
  <test/smoke/session.txt >_build/ci/smoke_out.txt 2>&1
normalize _build/ci/smoke_out.txt >_build/ci/smoke_out.norm
if ! diff -u test/smoke/expected.txt _build/ci/smoke_out.norm; then
  echo "CI FAIL: pb_client session output differs from test/smoke/expected.txt"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi
# The session above repeats a statement, so the server's prepared-plan
# cache must have registered at least one hit. Probe \metrics on a fresh
# connection (counter values are nondeterministic, so this stays out of
# the diffed transcript).
echo "== plan cache smoke (pb_sql_plan_cache_hits_total > 0) =="
printf '\\metrics\n\\quit\n' | \
  ./_build/default/bin/pb_client.exe --port "$SMOKE_PORT" \
  >_build/ci/smoke_metrics.txt 2>&1
PLAN_HITS=$(sed -n 's/^pb_sql_plan_cache_hits_total \([0-9][0-9]*\).*/\1/p' \
  _build/ci/smoke_metrics.txt | head -n 1)
if [ -z "$PLAN_HITS" ] || [ "$PLAN_HITS" -lt 1 ]; then
  echo "CI FAIL: expected pb_sql_plan_cache_hits_total > 0 after a repeated"
  echo "         statement; \\metrics reported: ${PLAN_HITS:-no counter}"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi

# Pull-based exposition smoke: the sidecar HTTP endpoint must serve the
# Prometheus text format with the request counter advanced by the
# scripted session above, and /healthz must report an ok status with
# the admission limits.
echo "== metrics endpoint smoke (curl /metrics + /healthz) =="
METRICS_PORT=$(sed -n \
  's|.*metrics on http://127.0.0.1:\([0-9]*\).*|\1|p' "$SMOKE_LOG")
if [ -z "$METRICS_PORT" ]; then
  echo "CI FAIL: pb_server did not announce a metrics port; log follows"
  cat "$SMOKE_LOG"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi
curl -sf "http://127.0.0.1:$METRICS_PORT/metrics" \
  >_build/ci/smoke_scrape.txt || {
  echo "CI FAIL: curl /metrics failed"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
}
# Exposition grammar: TYPE headers, and every sample line is
# "name[{labels}] value".
if ! grep -q '^# TYPE pb_net_requests_total counter' _build/ci/smoke_scrape.txt; then
  echo "CI FAIL: /metrics lacks the TYPE header for pb_net_requests_total"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi
if grep -v '^#' _build/ci/smoke_scrape.txt | grep -q -v \
  '^[a-zA-Z_:][a-zA-Z0-9_:]*\({[^}]*}\)\{0,1\} [0-9+.eE-]*$'; then
  echo "CI FAIL: /metrics sample line breaks the exposition grammar:"
  grep -v '^#' _build/ci/smoke_scrape.txt | grep -v \
    '^[a-zA-Z_:][a-zA-Z0-9_:]*\({[^}]*}\)\{0,1\} [0-9+.eE-]*$' | head -n 3
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi
NET_REQS=$(sed -n 's/^pb_net_requests_total \([0-9][0-9]*\).*/\1/p' \
  _build/ci/smoke_scrape.txt | head -n 1)
if [ -z "$NET_REQS" ] || [ "$NET_REQS" -lt 1 ]; then
  echo "CI FAIL: pb_net_requests_total did not advance over the scrape;"
  echo "         /metrics reported: ${NET_REQS:-no counter}"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi
curl -sf "http://127.0.0.1:$METRICS_PORT/healthz" \
  >_build/ci/smoke_health.txt || {
  echo "CI FAIL: curl /healthz failed"
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
}
if ! grep -q '"status":"ok"' _build/ci/smoke_health.txt || \
   ! grep -q '"max_inflight"' _build/ci/smoke_health.txt; then
  echo "CI FAIL: /healthz did not report an ok status with limits:"
  cat _build/ci/smoke_health.txt
  kill "$SMOKE_PID" 2>/dev/null || true
  exit 1
fi

kill -TERM "$SMOKE_PID"
SMOKE_EXIT=0
wait "$SMOKE_PID" || SMOKE_EXIT=$?
if [ "$SMOKE_EXIT" -ne 0 ]; then
  echo "CI FAIL: pb_server exited $SMOKE_EXIT on SIGTERM (expected 0)"
  exit 1
fi
if ! grep -q "pb_server stopped" "$SMOKE_LOG"; then
  echo "CI FAIL: pb_server did not log a graceful stop"
  exit 1
fi

# Admission + cancellation smoke: a deliberately starved server (one
# evaluation slot, one queue slot, 200ms deadline) hit by a burst of
# poison cross-join queries must (a) reject overflow with busy, (b)
# cooperatively cancel the poison it does admit, and (c) still answer a
# fresh query immediately afterwards.
echo "== saturation smoke (admission busy + cooperative cancellation) =="
POISON_LOG=_build/ci/poison_server.log
./_build/default/bin/pb_server.exe --port 0 --size 80 --seed 7 \
  --max-inflight 1 --max-queue 1 --deadline 0.2 >"$POISON_LOG" 2>&1 &
POISON_PID=$!
i=0
while [ $i -lt 100 ]; do
  grep -q "pb_server ready" "$POISON_LOG" 2>/dev/null && break
  i=$((i + 1))
  sleep 0.1
done
POISON_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$POISON_LOG")
if [ -z "$POISON_PORT" ]; then
  echo "CI FAIL: saturation pb_server did not come up; log follows"
  cat "$POISON_LOG"
  kill "$POISON_PID" 2>/dev/null || true
  exit 1
fi
./_build/default/bench/main.exe --loadgen --port "$POISON_PORT" \
  --clients 6 --requests 4 --workload bench/workloads/net_poison.txt \
  --label poison-burst --json-out _build/ci/poison.json \
  >_build/ci/poison_loadgen.txt 2>&1
BUSY=$(sed -n 's/.*"busy":\([0-9][0-9]*\).*/\1/p' _build/ci/poison.json)
if [ -z "$BUSY" ] || [ "$BUSY" -lt 1 ]; then
  echo "CI FAIL: expected >= 1 busy rejection past the admission queue;"
  echo "         loadgen reported: ${BUSY:-no busy field}"
  cat _build/ci/poison_loadgen.txt
  kill "$POISON_PID" 2>/dev/null || true
  exit 1
fi
printf '\\metrics\n\\quit\n' | \
  ./_build/default/bin/pb_client.exe --port "$POISON_PORT" \
  >_build/ci/poison_metrics.txt 2>&1
NET_CANCELLED=$(sed -n 's/^pb_net_cancelled_total \([0-9][0-9]*\).*/\1/p' \
  _build/ci/poison_metrics.txt | head -n 1)
if [ -z "$NET_CANCELLED" ] || [ "$NET_CANCELLED" -lt 1 ]; then
  echo "CI FAIL: expected pb_net_cancelled_total > 0 after the poison burst;"
  echo "         \\metrics reported: ${NET_CANCELLED:-no counter}"
  kill "$POISON_PID" 2>/dev/null || true
  exit 1
fi
# The server must be healthy, not merely alive: a fresh query answers.
printf 'SELECT COUNT(*) FROM recipes\n\\quit\n' | \
  ./_build/default/bin/pb_client.exe --port "$POISON_PORT" \
  >_build/ci/poison_fresh.txt 2>&1
if ! grep -q "80" _build/ci/poison_fresh.txt; then
  echo "CI FAIL: server did not answer a fresh query after the poison burst"
  cat _build/ci/poison_fresh.txt
  kill "$POISON_PID" 2>/dev/null || true
  exit 1
fi
kill -TERM "$POISON_PID"
POISON_EXIT=0
wait "$POISON_PID" || POISON_EXIT=$?
if [ "$POISON_EXIT" -ne 0 ]; then
  echo "CI FAIL: saturation pb_server exited $POISON_EXIT on SIGTERM (expected 0)"
  exit 1
fi

# SketchRefine serving smoke: a 100k-row server with a 10s request
# deadline must answer a package query evaluated with the sticky
# \strategy sketch-refine — a package plus objective and a
# sketch-refine footer, never a "(cancelled)" one: even when the
# deadline fires mid-refine, the anytime contract serves the current
# incumbent with status ok.
echo "== sketch-refine smoke (100k rows through pb_server, 10s deadline) =="
SR_LOG=_build/ci/sr_server.log
./_build/default/bin/pb_server.exe --port 0 --size 100000 --seed 7 \
  --deadline 10 >"$SR_LOG" 2>&1 &
SR_PID=$!
i=0
while [ $i -lt 200 ]; do
  grep -q "pb_server ready" "$SR_LOG" 2>/dev/null && break
  i=$((i + 1))
  sleep 0.2
done
SR_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$SR_LOG")
if [ -z "$SR_PORT" ]; then
  echo "CI FAIL: sketch-refine pb_server did not come up; log follows"
  cat "$SR_LOG"
  kill "$SR_PID" 2>/dev/null || true
  exit 1
fi
printf '\\strategy sketch-refine\nSELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) BETWEEN 3 AND 5 AND SUM(P.calories) <= 3000 MAXIMIZE SUM(P.protein)\n\\quit\n' | \
  ./_build/default/bin/pb_client.exe --port "$SR_PORT" \
  >_build/ci/sr_smoke_out.txt 2>&1
if ! grep -q "strategy set to sketch-refine" _build/ci/sr_smoke_out.txt; then
  echo "CI FAIL: \\strategy sketch-refine was not accepted:"
  cat _build/ci/sr_smoke_out.txt
  kill "$SR_PID" 2>/dev/null || true
  exit 1
fi
if ! grep -q "^objective:" _build/ci/sr_smoke_out.txt || \
   ! grep -q "strategy: sketch-refine" _build/ci/sr_smoke_out.txt; then
  echo "CI FAIL: sketch-refine query did not return a package + objective:"
  tail -n 20 _build/ci/sr_smoke_out.txt
  kill "$SR_PID" 2>/dev/null || true
  exit 1
fi
if grep -q "(cancelled)" _build/ci/sr_smoke_out.txt; then
  echo "CI FAIL: sketch-refine run reported (cancelled) instead of serving"
  echo "         its anytime incumbent:"
  tail -n 20 _build/ci/sr_smoke_out.txt
  kill "$SR_PID" 2>/dev/null || true
  exit 1
fi
kill -TERM "$SR_PID"
SR_EXIT=0
wait "$SR_PID" || SR_EXIT=$?
if [ "$SR_EXIT" -ne 0 ]; then
  echo "CI FAIL: sketch-refine pb_server exited $SR_EXIT on SIGTERM (expected 0)"
  exit 1
fi

# Shared-nothing router differential: the same scripted session replayed
# against a single pb_server and against a pb_router fronting two hash
# partitions of the same seeded data must produce byte-identical
# transcripts (partial-aggregate merge and scan-pull are not allowed to
# change answers). The router's /healthz must aggregate per-shard health.
echo "== router differential (pb_router over 2 shards vs single node) =="
SH0_LOG=_build/ci/shard0_server.log
SH1_LOG=_build/ci/shard1_server.log
ONE_LOG=_build/ci/router_single.log
RT_LOG=_build/ci/router.log
./_build/default/bin/pb_server.exe --port 0 --size 80 --seed 7 \
  --shard 0/2 >"$SH0_LOG" 2>&1 &
SH0_PID=$!
./_build/default/bin/pb_server.exe --port 0 --size 80 --seed 7 \
  --shard 1/2 >"$SH1_LOG" 2>&1 &
SH1_PID=$!
./_build/default/bin/pb_server.exe --port 0 --size 80 --seed 7 \
  >"$ONE_LOG" 2>&1 &
ONE_PID=$!
for log in "$SH0_LOG" "$SH1_LOG" "$ONE_LOG"; do
  i=0
  while [ $i -lt 100 ]; do
    grep -q "pb_server ready" "$log" 2>/dev/null && break
    i=$((i + 1))
    sleep 0.1
  done
done
SH0_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$SH0_LOG")
SH1_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$SH1_LOG")
ONE_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$ONE_LOG")
if [ -z "$SH0_PORT" ] || [ -z "$SH1_PORT" ] || [ -z "$ONE_PORT" ]; then
  echo "CI FAIL: router-stage pb_servers did not come up; logs follow"
  cat "$SH0_LOG" "$SH1_LOG" "$ONE_LOG"
  kill "$SH0_PID" "$SH1_PID" "$ONE_PID" 2>/dev/null || true
  exit 1
fi
./_build/default/bin/pb_router.exe --port 0 \
  --shard "127.0.0.1:$SH0_PORT" --shard "127.0.0.1:$SH1_PORT" \
  --metrics-port 0 >"$RT_LOG" 2>&1 &
RT_PID=$!
i=0
while [ $i -lt 100 ]; do
  grep -q "pb_router ready" "$RT_LOG" 2>/dev/null && break
  i=$((i + 1))
  sleep 0.1
done
RT_PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\) .*/\1/p' "$RT_LOG")
if [ -z "$RT_PORT" ]; then
  echo "CI FAIL: pb_router did not come up; log follows"
  cat "$RT_LOG"
  kill "$RT_PID" "$SH0_PID" "$SH1_PID" "$ONE_PID" 2>/dev/null || true
  exit 1
fi
./_build/default/bin/pb_client.exe --port "$ONE_PORT" --echo \
  <test/smoke/store_session.txt >_build/ci/router_one.txt 2>&1
./_build/default/bin/pb_client.exe --port "$RT_PORT" --echo \
  <test/smoke/store_session.txt >_build/ci/router_rt.txt 2>&1
normalize _build/ci/router_one.txt >_build/ci/router_one.norm
normalize _build/ci/router_rt.txt >_build/ci/router_rt.norm
if ! diff -u _build/ci/router_one.norm _build/ci/router_rt.norm; then
  echo "CI FAIL: router transcript differs from the single-node transcript"
  kill "$RT_PID" "$SH0_PID" "$SH1_PID" "$ONE_PID" 2>/dev/null || true
  exit 1
fi
RT_METRICS_PORT=$(sed -n \
  's|.*metrics on http://127.0.0.1:\([0-9]*\).*|\1|p' "$RT_LOG")
curl -sf "http://127.0.0.1:$RT_METRICS_PORT/healthz" \
  >_build/ci/router_health.txt || {
  echo "CI FAIL: curl /healthz on pb_router failed"
  kill "$RT_PID" "$SH0_PID" "$SH1_PID" "$ONE_PID" 2>/dev/null || true
  exit 1
}
if ! grep -q '"status":"ok"' _build/ci/router_health.txt || \
   ! grep -q '"shard":0' _build/ci/router_health.txt || \
   ! grep -q '"shard":1' _build/ci/router_health.txt; then
  echo "CI FAIL: router /healthz did not aggregate per-shard health:"
  cat _build/ci/router_health.txt
  kill "$RT_PID" "$SH0_PID" "$SH1_PID" "$ONE_PID" 2>/dev/null || true
  exit 1
fi
kill -TERM "$RT_PID"
RT_EXIT=0
wait "$RT_PID" || RT_EXIT=$?
if [ "$RT_EXIT" -ne 0 ]; then
  echo "CI FAIL: pb_router exited $RT_EXIT on SIGTERM (expected 0)"
  exit 1
fi
kill -TERM "$SH0_PID" "$SH1_PID" "$ONE_PID"
for pid in "$SH0_PID" "$SH1_PID" "$ONE_PID"; do
  SHARD_EXIT=0
  wait "$pid" || SHARD_EXIT=$?
  if [ "$SHARD_EXIT" -ne 0 ]; then
    echo "CI FAIL: router-stage pb_server exited $SHARD_EXIT on SIGTERM"
    exit 1
  fi
done

echo "CI OK"
