#!/bin/sh
# Local CI driver: the checks a change must pass before it lands.
#   bin/ci.sh            -- typecheck, build, tests (sequential + 8-domain)
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check (typecheck) =="
dune build @check

echo "== dune build (full build) =="
dune build

echo "== dune runtest (PB_DOMAINS=1) =="
dune runtest

# The parallel evaluation layer must be invisible in test output: the
# same suite, same seed, run on an 8-domain pool has to produce the
# same results test-by-test. Run the built binary directly (no dune
# noise), normalise timings away, and fail on any difference.
echo "== determinism: test output identical at PB_DOMAINS=1 vs 8 =="
mkdir -p _build/ci
normalize() {
  sed -e 's/[0-9][0-9]*\.[0-9][0-9]*s/<time>/g' \
      -e "s/run has ID \`[A-Z0-9]*'/run has ID <id>/" "$1"
}
QCHECK_SEED=20260806 PB_DOMAINS=1 ./_build/default/test/test_main.exe \
  >_build/ci/run_d1.txt 2>&1
QCHECK_SEED=20260806 PB_DOMAINS=8 ./_build/default/test/test_main.exe \
  >_build/ci/run_d8.txt 2>&1
normalize _build/ci/run_d1.txt >_build/ci/run_d1.norm
normalize _build/ci/run_d8.txt >_build/ci/run_d8.norm
if ! diff -u _build/ci/run_d1.norm _build/ci/run_d8.norm; then
  echo "CI FAIL: test output differs between PB_DOMAINS=1 and PB_DOMAINS=8"
  exit 1
fi

echo "CI OK"
