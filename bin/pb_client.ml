(* pb_client — command-line client for pb_server.

     pb_client --port 7878 -c '\tables' -c 'SELECT 1 + 1'
     pb_client --port 7878 < session.txt      # one request per line
     pb_client --port 7878 --echo < session.txt

   Lines starting with '#' and blank lines are skipped in stdin mode, so
   scripted sessions can carry comments. Busy responses (the server's
   admission queue is full) are retried with jittered exponential
   backoff, up to --retries times. Exit status: 0 when every request got
   a response (including error statuses, which are printed), 1 on
   connection failure or version mismatch. *)

open Cmdliner

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")

let port_arg =
  Arg.(
    value & opt int 7878 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Server port.")

let deadline_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Per-request deadline sent with every request. 0 = none.")

let connect_timeout_arg =
  Arg.(
    value & opt float 0.0
    & info [ "connect-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Bound TCP connection establishment; a dead-but-routing address \
           fails fast instead of waiting for the kernel's own timeout. \
           0 = no bound.")

let retries_arg =
  Arg.(
    value & opt int 5
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retries for busy responses and busy connection rejections, with \
           jittered exponential backoff. 0 disables retrying.")

let retry_delay_arg =
  Arg.(
    value & opt float 0.05
    & info [ "retry-delay" ] ~docv:"SECONDS"
        ~doc:"Base backoff delay; attempt k waits about delay * 2^k.")

let cmds_arg =
  Arg.(
    value & opt_all string []
    & info [ "c"; "command" ] ~docv:"CMD"
        ~doc:"Request to send (repeatable, in order). Without -c, requests \
              are read from stdin, one per line.")

let echo_arg =
  Arg.(
    value & flag
    & info [ "echo" ]
        ~doc:"Print each request as 'pb> CMD' before its response (for \
              readable scripted transcripts).")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Send a fresh client-generated trace id with every request and, \
           after each response, print the client-side round-trip latency \
           together with the server-side span tree for that id (fetched \
           via a follow-up \\\\traces request).")

let is_quit line =
  match String.trim line with "\\quit" | "\\q" -> true | _ -> false

(* Jittered exponential backoff: attempt k sleeps base * 2^k scaled by a
   random factor in [0.5, 1.5), so a burst of rejected clients does not
   re-dogpile the server in lockstep. *)
let backoff =
  let rng =
    Random.State.make
      [| int_of_float (Unix.gettimeofday () *. 1e6); Unix.getpid () |]
  in
  fun ~base attempt ->
    let d = base *. (2.0 ** float_of_int attempt) in
    d *. (0.5 +. Random.State.float rng 1.0)

let connect_with_retry ~host ~port ~connect_timeout ~retries ~base =
  let rec go attempt =
    match Pb_net.Client.connect ~host ?connect_timeout ~port () with
    | client -> client
    | exception Pb_net.Client.Rejected (Pb_net.Protocol.Busy, msg)
      when attempt < retries ->
        Printf.eprintf "pb_client: busy (%s); retrying\n%!" msg;
        Unix.sleepf (backoff ~base attempt);
        go (attempt + 1)
    | exception Pb_net.Client.Rejected (status, msg) ->
        Printf.eprintf "pb_client: server refused connection (%s): %s\n"
          (Pb_net.Protocol.status_to_string status)
          msg;
        exit 1
    | exception Pb_net.Client.Net_error msg ->
        Printf.eprintf "pb_client: %s\n" msg;
        exit 1
    | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "pb_client: cannot connect to %s:%d: %s\n" host port
          (Unix.error_message err);
        exit 1
  in
  go 0

let run host port deadline connect_timeout retries retry_delay cmds echo trace =
  let deadline = if deadline > 0.0 then Some deadline else None in
  let connect_timeout =
    if connect_timeout > 0.0 then Some connect_timeout else None
  in
  let stdin_mode = cmds = [] in
  let next_line =
    let pending = ref cmds in
    fun () ->
      if stdin_mode then (
        match input_line stdin with
        | line -> Some line
        | exception End_of_file -> None)
      else
        match !pending with
        | [] -> None
        | line :: rest ->
            pending := rest;
            Some line
  in
  let client =
    connect_with_retry ~host ~port ~connect_timeout ~retries ~base:retry_delay
  in
  let rec send ?trace line attempt =
    match Pb_net.Client.request ?deadline ?trace client line with
    | { Pb_net.Protocol.status = Pb_net.Protocol.Busy; _ }
      when attempt < retries ->
        Unix.sleepf (backoff ~base:retry_delay attempt);
        send ?trace line (attempt + 1)
    | resp -> resp
  in
  (* Client-side latency next to the server-side span tree: the id was
     ours, so the tree the server retained for it is provably this very
     request's. *)
  let print_trace id elapsed =
    Printf.printf "trace %s  client round-trip %.3fs\n" id elapsed;
    match send ("\\traces " ^ id) 0 with
    | { Pb_net.Protocol.status = Pb_net.Protocol.Ok; body } ->
        print_endline body
    | { Pb_net.Protocol.status; body } ->
        Printf.printf "error (%s): %s\n"
          (Pb_net.Protocol.status_to_string status)
          body
    | exception Pb_net.Client.Net_error msg ->
        Printf.eprintf "pb_client: %s\n" msg
  in
  let rec loop () =
    match next_line () with
    | None -> ()
    | Some line when stdin_mode && (String.trim line = "" || line.[0] = '#') ->
        loop ()
    | Some line -> (
        if echo then Printf.printf "pb> %s\n" line;
        let trace_id =
          if trace && not (is_quit line) then
            Some (Pb_net.Protocol.fresh_trace_id ())
          else None
        in
        let t0 = Unix.gettimeofday () in
        match send ?trace:trace_id line 0 with
        | { Pb_net.Protocol.status = Pb_net.Protocol.Ok; body } ->
            if body <> "" then print_endline body;
            Option.iter
              (fun id -> print_trace id (Unix.gettimeofday () -. t0))
              trace_id;
            flush stdout;
            if not (is_quit line) then loop ()
        | { Pb_net.Protocol.status; body } ->
            Printf.printf "error (%s): %s\n"
              (Pb_net.Protocol.status_to_string status)
              body;
            (match status with
            | Pb_net.Protocol.Shutting_down -> ()
            | _ ->
                Option.iter
                  (fun id -> print_trace id (Unix.gettimeofday () -. t0))
                  trace_id);
            flush stdout;
            (* the server hangs up after announcing shutdown *)
            (match status with
            | Pb_net.Protocol.Shutting_down -> ()
            | _ -> loop ())
        | exception Pb_net.Client.Net_error msg ->
            Printf.eprintf "pb_client: %s\n" msg;
            exit 1)
  in
  loop ();
  Pb_net.Client.close client

let cmd =
  let term =
    Term.(
      const run $ host_arg $ port_arg $ deadline_arg $ connect_timeout_arg
      $ retries_arg $ retry_delay_arg $ cmds_arg $ echo_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "pb_client" ~version:"1.0.0"
       ~doc:"Client for the PackageBuilder wire protocol")
    term

let () = exit (Cmd.eval cmd)
