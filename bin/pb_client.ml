(* pb_client — command-line client for pb_server.

     pb_client --port 7878 -c '\tables' -c 'SELECT 1 + 1'
     pb_client --port 7878 < session.txt      # one request per line
     pb_client --port 7878 --echo < session.txt

   Lines starting with '#' and blank lines are skipped in stdin mode, so
   scripted sessions can carry comments. Exit status: 0 when every
   request got a response (including protocol-level errors, which are
   printed), 1 on connection failure. *)

open Cmdliner

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")

let port_arg =
  Arg.(
    value & opt int 7878 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Server port.")

let deadline_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Per-request deadline sent with every request. 0 = none.")

let cmds_arg =
  Arg.(
    value & opt_all string []
    & info [ "c"; "command" ] ~docv:"CMD"
        ~doc:"Request to send (repeatable, in order). Without -c, requests \
              are read from stdin, one per line.")

let echo_arg =
  Arg.(
    value & flag
    & info [ "echo" ]
        ~doc:"Print each request as 'pb> CMD' before its response (for \
              readable scripted transcripts).")

let is_quit line =
  match String.trim line with "\\quit" | "\\q" -> true | _ -> false

let run host port deadline cmds echo =
  let deadline = if deadline > 0.0 then Some deadline else None in
  let stdin_mode = cmds = [] in
  let next_line =
    let pending = ref cmds in
    fun () ->
      if stdin_mode then (
        match input_line stdin with
        | line -> Some line
        | exception End_of_file -> None)
      else
        match !pending with
        | [] -> None
        | line :: rest ->
            pending := rest;
            Some line
  in
  match Pb_net.Client.connect ~host ~port () with
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "pb_client: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message err);
      exit 1
  | client ->
      let rec loop () =
        match next_line () with
        | None -> ()
        | Some line when stdin_mode && (String.trim line = "" || line.[0] = '#')
          ->
            loop ()
        | Some line -> (
            if echo then Printf.printf "pb> %s\n" line;
            match Pb_net.Client.request ?deadline client line with
            | Ok output ->
                if output <> "" then print_endline output;
                flush stdout;
                if not (is_quit line) then loop ()
            | Error (code, msg) ->
                Printf.printf "error (%s): %s\n"
                  (Pb_net.Protocol.error_code_to_string code)
                  msg;
                flush stdout;
                (* busy/shutdown mean the server is hanging up on us *)
                (match code with
                | Pb_net.Protocol.Busy | Pb_net.Protocol.Shutting_down -> ()
                | _ -> loop ())
            | exception Pb_net.Client.Net_error msg ->
                Printf.eprintf "pb_client: %s\n" msg;
                exit 1)
      in
      loop ();
      Pb_net.Client.close client

let cmd =
  let term =
    Term.(const run $ host_arg $ port_arg $ deadline_arg $ cmds_arg $ echo_arg)
  in
  Cmd.v
    (Cmd.info "pb_client" ~version:"1.0.0"
       ~doc:"Client for the PackageBuilder wire protocol")
    term

let () = exit (Cmd.eval cmd)
