(* packagebuilder — command-line front end.

   Subcommands:
     run       evaluate a PaQL query and print the best package
     next      print the k best packages in order
     explain   show the evaluation plan: candidates, linearization,
               pruning bounds, search-space size, neighbourhood SQL
     template  render the package-template view (§3.1), optionally with
               the visual summary (§3.2)
     explore   run a scripted adaptive-exploration session (§3.3)
     sql       run plain SQL against the loaded data
     generate  write the synthetic workload tables to CSV files

   Data comes from the built-in synthetic workload (default) or CSV files
   passed as --table name=path. *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

(* ---- shared options -------------------------------------------------- *)

let tables_arg =
  let doc = "Load CSV file as a table, e.g. --table recipes=data/recipes.csv. Repeatable." in
  Arg.(value & opt_all string [] & info [ "table" ] ~docv:"NAME=PATH" ~doc)

let size_arg =
  let doc = "Rows for the synthetic recipes table (travel/stocks scale along)." in
  Arg.(value & opt int 500 & info [ "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for the synthetic workload generators." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let query_arg =
  let doc = "PaQL query text (quote it), or @FILE to read from a file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let strategy_arg =
  let strategies =
    [
      ("hybrid", `Hybrid);
      ("ilp", `Ilp);
      ("brute-force", `Bf);
      ("brute-force-nopruning", `Bf_noprune);
      ("local-search", `Ls);
    ]
  in
  let doc =
    Printf.sprintf "Evaluation strategy: %s."
      (String.concat ", " (List.map fst strategies))
  in
  Arg.(
    value
    & opt (enum strategies) `Hybrid
    & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc)

let to_engine_strategy = function
  | `Hybrid -> Pb_core.Engine.Hybrid
  | `Ilp -> Pb_core.Engine.Ilp
  | `Bf -> Pb_core.Engine.Brute_force { use_pruning = true }
  | `Bf_noprune -> Pb_core.Engine.Brute_force { use_pruning = false }
  | `Ls -> Pb_core.Engine.Local_search Pb_core.Local_search.default_params

let load_db tables size seed =
  let db = Pb_sql.Database.create () in
  if tables = [] then
    Pb_workload.Workload.install ~seed ~recipes_n:size
      ~destinations:(max 2 (size / 60))
      ~stocks_n:(max 20 (size / 2))
      db
  else
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | Some i ->
            let name = String.sub spec 0 i in
            let path = String.sub spec (i + 1) (String.length spec - i - 1) in
            Pb_sql.Database.load_csv db ~name path
        | None ->
            failwith
              (Printf.sprintf "--table expects NAME=PATH, got %S" spec))
      tables;
  db

let read_query text =
  let src =
    if String.length text > 1 && text.[0] = '@' then (
      let path = String.sub text 1 (String.length text - 1) in
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s)
    else text
  in
  Pb_paql.Parser.parse src

let print_result (r : Pb_core.Engine.result) =
  (match r.package with
  | Some pkg -> print_string (Pb_paql.Package.to_string pkg)
  | None -> print_endline "no valid package");
  (match r.objective with
  | Some v -> Printf.printf "objective: %g\n" v
  | None -> ());
  Printf.printf "strategy: %s%s, %.3fs\n" r.strategy_used
    (match r.proof with
    | Pb_core.Engine.Optimal | Pb_core.Engine.Infeasible -> " (proven optimal)"
    | Pb_core.Engine.Feasible -> ""
    | Pb_core.Engine.Cancelled -> " (cancelled)")
    r.elapsed;
  List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) r.stats

(* ---- run -------------------------------------------------------------- *)

let run_cmd =
  let action tables size seed strategy query_text =
    let db = load_db tables size seed in
    let query = read_query query_text in
    print_endline (Pb_explore.Describe.describe_query query);
    let result =
      Pb_core.Engine.run ~strategy:(to_engine_strategy strategy) db query
    in
    print_result result
  in
  let term =
    Term.(const action $ tables_arg $ size_arg $ seed_arg $ strategy_arg $ query_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Evaluate a PaQL query and print the best package") term

(* ---- next ------------------------------------------------------------- *)

let next_cmd =
  let k_arg =
    Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"How many packages.")
  in
  let action tables size seed k query_text =
    let db = load_db tables size seed in
    let query = read_query query_text in
    let packages = Pb_core.Engine.next_packages ~limit:k db query in
    if packages = [] then print_endline "no valid package"
    else
      List.iteri
        (fun i pkg ->
          Printf.printf "-- package %d%s --\n" (i + 1)
            (match Pb_paql.Semantics.objective_value ~db query pkg with
            | Some v -> Printf.sprintf " (objective %g)" v
            | None -> "");
          print_string (Pb_paql.Package.to_string pkg))
        packages
  in
  let term =
    Term.(const action $ tables_arg $ size_arg $ seed_arg $ k_arg $ query_arg)
  in
  Cmd.v
    (Cmd.info "next"
       ~doc:"Print the K best packages via solver re-evaluation with no-good cuts")
    term

(* ---- explain ---------------------------------------------------------- *)

let explain_cmd =
  let action tables size seed query_text =
    let db = load_db tables size seed in
    let query = read_query query_text in
    let c = Pb_core.Coeffs.make db query in
    Printf.printf "query: %s\n\n" (Pb_paql.Ast.to_string query);
    Printf.printf "candidate tuples (after base constraints): %d\n" c.Pb_core.Coeffs.n;
    Printf.printf "multiplicity cap: %d\n" c.Pb_core.Coeffs.max_mult;
    (match c.Pb_core.Coeffs.formula with
    | Ok _ -> print_endline "global constraints: linearizable (ILP-ready)"
    | Error reason -> Printf.printf "global constraints: opaque (%s) — search strategies only\n" reason);
    (match c.Pb_core.Coeffs.objective with
    | None -> print_endline "objective: none"
    | Some (Some _) -> print_endline "objective: linear"
    | Some None -> print_endline "objective: non-linear — search strategies only");
    let b = Pb_core.Pruning.cardinality_bounds c in
    Printf.printf "cardinality bounds (sec 4.1): %s\n"
      (Pb_core.Pruning.bounds_to_string b);
    Printf.printf "search space: 2^%.1f unpruned -> 2^%.1f pruned (10^%.1f x reduction)\n"
      (Pb_core.Pruning.log2_unpruned c)
      (Pb_core.Pruning.log2_pruned c b)
      (Pb_core.Pruning.reduction_factor_log10 c b);
    print_endline "\ncost model (sec 5 'optimizing PaQL queries'):";
    print_string (Pb_core.Cost_model.to_table c);
    (* neighbourhood SQL for the current best package, if any *)
    let result = Pb_core.Engine.run db query in
    (match result.Pb_core.Engine.package with
    | Some pkg when Pb_paql.Package.cardinality pkg >= 1 ->
        let _, sql = Pb_core.Local_search.sql_replacements db c pkg ~k:1 in
        Printf.printf "\nlocal-search neighbourhood query (k=1, sec 4.2):\n%s\n" sql
    | _ -> ());
    print_endline "";
    print_result result
  in
  let term = Term.(const action $ tables_arg $ size_arg $ seed_arg $ query_arg) in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the evaluation plan and §4 statistics for a query")
    term

(* ---- template --------------------------------------------------------- *)

let template_cmd =
  let summary_arg =
    Arg.(value & flag & info [ "summary" ] ~doc:"Include the visual summary (§3.2).")
  in
  let action tables size seed summary query_text =
    let db = load_db tables size seed in
    let query = read_query query_text in
    let t = Pb_explore.Template.create db query in
    print_string (Pb_explore.Template.render ~show_summary:summary db t)
  in
  let term =
    Term.(const action $ tables_arg $ size_arg $ seed_arg $ summary_arg $ query_arg)
  in
  Cmd.v (Cmd.info "template" ~doc:"Render the package template view (§3.1)") term

(* ---- explore ---------------------------------------------------------- *)

let explore_cmd =
  let rounds_arg =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N" ~doc:"Resampling rounds.")
  in
  let keep_arg =
    Arg.(
      value & opt int 1
      & info [ "keep" ] ~docv:"K" ~doc:"Tuples kept from each sample (the first K).")
  in
  let action tables size seed rounds keep query_text =
    let db = load_db tables size seed in
    let query = read_query query_text in
    match Pb_explore.Session.start db query with
    | Error e -> Printf.printf "cannot start session: %s\n" e
    | Ok session ->
        let rec loop session n =
          let pkg = Pb_explore.Session.current session in
          Printf.printf "-- sample %d --\n" n;
          print_string (Pb_paql.Package.to_string pkg);
          if n < rounds then begin
            let kept =
              List.filteri (fun i _ -> i < keep) (Pb_paql.Package.support pkg)
            in
            Printf.printf "keeping candidate tuple(s): %s\n"
              (String.concat ", " (List.map string_of_int kept));
            List.iter
              (fun s ->
                Printf.printf "inferred constraint suggestion: %s\n"
                  s.Pb_explore.Suggest.paql_fragment)
              (Pb_explore.Session.infer_constraints session ~keep:kept);
            let session, status =
              Pb_explore.Session.keep_and_resample session ~keep:kept
            in
            match status with
            | `Fresh -> loop session (n + 1)
            | `Exhausted -> print_endline "result space exhausted"
          end
        in
        loop session 1
  in
  let term =
    Term.(
      const action $ tables_arg $ size_arg $ seed_arg $ rounds_arg $ keep_arg
      $ query_arg)
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Scripted adaptive-exploration session (§3.3)")
    term

(* ---- sql -------------------------------------------------------------- *)

let sql_cmd =
  let action tables size seed sql_text =
    let db = load_db tables size seed in
    List.iter
      (fun stmt ->
        match Pb_sql.Executor.execute db stmt with
        | Pb_sql.Executor.Rows rel ->
            print_string (Pb_relation.Relation.to_table ~max_rows:50 rel)
        | Pb_sql.Executor.Affected n -> Printf.printf "%d row(s) affected\n" n
        | Pb_sql.Executor.Created -> print_endline "ok")
      (Pb_sql.Parser.parse_script sql_text)
  in
  let sql_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"SQL" ~doc:"SQL script (semicolon-separated).")
  in
  let term = Term.(const action $ tables_arg $ size_arg $ seed_arg $ sql_arg) in
  Cmd.v (Cmd.info "sql" ~doc:"Run SQL against the loaded tables") term

(* ---- complete ---------------------------------------------------------- *)

let complete_cmd =
  let action tables size seed prefix =
    let db = load_db tables size seed in
    match Pb_explore.Complete.suggest db prefix with
    | [] -> print_endline "(no suggestions)"
    | suggestions -> List.iter print_endline suggestions
  in
  let prefix_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PREFIX" ~doc:"Partial PaQL text typed so far.")
  in
  let term =
    Term.(const action $ tables_arg $ size_arg $ seed_arg $ prefix_arg)
  in
  Cmd.v
    (Cmd.info "complete"
       ~doc:"Auto-suggest the next PaQL tokens (Figure 1's syntax help)")
    term

(* ---- shell -------------------------------------------------------------- *)

let shell_cmd =
  let db_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR"
          ~doc:
            "Persistent database directory: loaded on start when it exists, \
             written back on \\quit. Saved packages survive across sessions.")
  in
  let action tables size seed db_dir =
    let db =
      match db_dir with
      | Some dir when Sys.file_exists (Filename.concat dir "manifest.txt") ->
          Pb_sql.Persist.load_dir dir
      | _ -> load_db tables size seed
    in
    let state = Pb_shell.Repl.create db in
    print_endline
      "packagebuilder shell — PaQL + SQL + \\commands (\\help, \\quit)";
    let rec loop () =
      print_string "pb> ";
      match read_line () with
      | exception End_of_file -> ()
      | line ->
          let reaction = Pb_shell.Repl.handle state line in
          if reaction.Pb_shell.Repl.output <> "" then
            print_endline reaction.Pb_shell.Repl.output;
          if reaction.Pb_shell.Repl.quit then ()
          else loop ()
    in
    loop ();
    match db_dir with
    | Some dir ->
        Pb_sql.Persist.save_dir (Pb_shell.Repl.database state) dir;
        Printf.printf "database saved to %s\n" dir
    | None -> ()
  in
  let term =
    Term.(const action $ tables_arg $ size_arg $ seed_arg $ db_dir_arg)
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive PaQL/SQL shell with saved packages")
    term

(* ---- generate --------------------------------------------------------- *)

let generate_cmd =
  let out_arg =
    Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let action size seed out =
    let db = load_db [] size seed in
    List.iter
      (fun name ->
        let rel = Pb_sql.Database.find_exn db name in
        let header = Pb_relation.Schema.names (Pb_relation.Relation.schema rel) in
        let rows =
          List.map
            (fun row ->
              Array.to_list (Array.map Pb_relation.Value.to_string row))
            (Pb_relation.Relation.to_list rel)
        in
        let path = Filename.concat out (name ^ ".csv") in
        Pb_util.Csv.write_file path (header :: rows);
        Printf.printf "wrote %s (%d rows)\n" path (List.length rows))
      (Pb_sql.Database.table_names db)
  in
  let term = Term.(const action $ size_arg $ seed_arg $ out_arg) in
  Cmd.v (Cmd.info "generate" ~doc:"Write the synthetic workload tables to CSV") term

let main_cmd =
  let doc = "PackageBuilder: package queries over relational data (PaQL)" in
  let info = Cmd.info "packagebuilder" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  Cmd.group ~default info
    [ run_cmd; next_cmd; explain_cmd; template_cmd; explore_cmd; sql_cmd;
      complete_cmd; shell_cmd; generate_cmd ]

let () =
  setup_logs (Some Logs.Warning);
  exit (Cmd.eval main_cmd)
