(* pb_server — serve the PackageBuilder REPL surface (PaQL, SQL,
   backslash commands) over TCP. One shared database, one session per
   connection; SIGINT/SIGTERM drain in-flight requests and exit 0.

     pb_server --port 7878 --size 500
     pb_server --port 0                 # ephemeral; the bound port is printed
     pb_server --db ./state --deadline 5
     pb_server --table recipes=data/recipes.csv *)

open Cmdliner

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")

let port_arg =
  Arg.(
    value & opt int 7878
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:"TCP port; 0 picks an ephemeral port (printed on startup).")

let max_conns_arg =
  Arg.(
    value & opt int 64
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Maximum live connections; beyond this, clients are rejected \
           with a busy error instead of queueing.")

let max_inflight_arg =
  Arg.(
    value & opt int 64
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Maximum requests evaluating concurrently; further requests wait \
           in the admission queue.")

let max_queue_arg =
  Arg.(
    value & opt int 128
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission queue depth; a request arriving past it is answered \
           with a busy status immediately (backpressure).")

let deadline_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Default per-request deadline; past it the request's governance \
           token is cancelled and the client gets a deadline status with \
           the partial result. 0 disables the default (clients can still \
           set their own).")

let tables_arg =
  Arg.(
    value & opt_all string []
    & info [ "table" ] ~docv:"NAME=PATH"
        ~doc:"Load CSV file as a table. Repeatable.")

let size_arg =
  Arg.(
    value & opt int 500
    & info [ "size" ] ~docv:"N"
        ~doc:"Rows for the synthetic recipes table (travel/stocks scale along).")

let seed_arg =
  Arg.(
    value & opt int 7
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the synthetic workload.")

let db_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "db" ] ~docv:"DIR"
        ~doc:
          "Persistent database directory: loaded on start when it exists, \
           written back (crash-safely) on shutdown.")

let slowlog_arg =
  Arg.(
    value & opt float 0.0
    & info [ "slowlog" ] ~docv:"SECONDS"
        ~doc:"Log requests slower than this to the slow-query log. 0 = off.")

let plan_cache_arg =
  Arg.(
    value & opt int 128
    & info [ "plan-cache" ] ~docv:"N"
        ~doc:
          "Prepared-plan cache capacity (entries), shared by all \
           connections. 0 disables caching: every request re-parses — \
           the benchmark baseline.")

let metrics_port_arg =
  Arg.(
    value & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve GET /metrics (Prometheus text exposition), /healthz \
           (admission depths vs limits as JSON) and /traces/<id> (span \
           tree as JSON) over plain HTTP/1.1 on this port; 0 picks an \
           ephemeral one (printed on startup). Disabled when absent.")

let serve_mode_arg =
  Arg.(
    value
    & opt (enum [ ("event", Pb_net.Server.Event); ("threads", Pb_net.Server.Threads) ])
        Pb_net.Server.Event
    & info [ "serve-mode" ] ~docv:"MODE"
        ~doc:
          "Connection handling: $(b,event) (default) multiplexes all \
           connections on one readiness loop with a bounded worker pool — \
           an idle connection costs a buffer, not a thread; $(b,threads) \
           is the legacy thread-per-connection loop.")

let shard_arg =
  Arg.(
    value & opt (some string) None
    & info [ "shard" ] ~docv:"I/N"
        ~doc:
          "Run as shard $(i,I) of $(i,N) (0-based): after loading, every \
           table is filtered to the rows whose stable hash maps to this \
           shard, so $(i,N) servers started with the same data and \
           $(b,--shard) 0/N .. (N-1)/N hold a disjoint partition of it. \
           Front them with $(b,pb_router).")

let trace_capacity_arg =
  Arg.(
    value & opt int 256
    & info [ "trace-capacity" ] ~docv:"N"
        ~doc:
          "Completed request traces retained for \\\\traces and \
           /traces/<id>, evicted FIFO. 0 disables request tracing \
           entirely (the zero-overhead baseline).")

let load_db tables size seed db_dir =
  match db_dir with
  | Some dir when Sys.file_exists (Filename.concat dir "manifest.txt") ->
      Pb_sql.Persist.load_dir dir
  | _ ->
      let db = Pb_sql.Database.create () in
      if tables = [] then
        Pb_workload.Workload.install ~seed ~recipes_n:size
          ~destinations:(max 2 (size / 60))
          ~stocks_n:(max 20 (size / 2))
          db
      else
        List.iter
          (fun spec ->
            match String.index_opt spec '=' with
            | Some i ->
                let name = String.sub spec 0 i in
                let path =
                  String.sub spec (i + 1) (String.length spec - i - 1)
                in
                Pb_sql.Database.load_csv db ~name path
            | None ->
                failwith (Printf.sprintf "--table expects NAME=PATH, got %S" spec))
          tables;
      db

let parse_shard_spec spec =
  match String.index_opt spec '/' with
  | Some i -> (
      let shard = String.sub spec 0 i in
      let shards = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (int_of_string_opt shard, int_of_string_opt shards) with
      | Some shard, Some shards when shards >= 1 && shard >= 0 && shard < shards
        ->
          (shard, shards)
      | _ -> failwith (Printf.sprintf "--shard expects I/N with 0 <= I < N, got %S" spec))
  | None -> failwith (Printf.sprintf "--shard expects I/N, got %S" spec)

let apply_shard db (shard, shards) =
  List.iter
    (fun name ->
      let rel = Pb_sql.Database.find_exn db name in
      Pb_sql.Database.put db name
        (Pb_shard.Hash.filter_shard ~shards ~shard rel))
    (Pb_sql.Database.table_names db)

let serve host port max_conns max_inflight max_queue deadline tables size
    seed db_dir slowlog plan_cache metrics_port serve_mode shard_spec
    trace_capacity =
  let db = load_db tables size seed db_dir in
  let shard = Option.map parse_shard_spec shard_spec in
  Option.iter (apply_shard db) shard;
  if slowlog > 0.0 then Pb_obs.Slow_log.set_threshold (Some slowlog);
  let config =
    {
      Pb_net.Server.default_config with
      host;
      port;
      max_connections = max_conns;
      max_inflight;
      max_queue;
      default_deadline = (if deadline > 0.0 then Some deadline else None);
      plan_cache_capacity = max 0 plan_cache;
      trace_capacity = max 0 trace_capacity;
      serve_mode;
    }
  in
  let server = Pb_net.Server.start ~config db in
  Pb_net.Server.install_signal_handlers server;
  Printf.printf "pb_server listening on %s:%d (pid %d, %d tables, max %d conns%s)\n"
    host
    (Pb_net.Server.port server)
    (Unix.getpid ())
    (List.length (Pb_sql.Database.table_names db))
    max_conns
    (if deadline > 0.0 then Printf.sprintf ", deadline %gs" deadline else "");
  (match shard with
  | Some (i, n) -> Printf.printf "pb_server shard %d/%d\n" i n
  | None -> ());
  let http =
    match metrics_port with
    | Some p ->
        let h =
          Pb_obs.Http.start ~host ~port:p (Pb_net.Server.http_handler server)
        in
        Printf.printf "pb_server metrics on http://%s:%d\n" host
          (Pb_obs.Http.port h);
        Some h
    | None -> None
  in
  print_string "pb_server ready\n";
  flush stdout;
  Pb_net.Server.join server;
  Option.iter Pb_obs.Http.stop http;
  (match db_dir with
  | Some dir ->
      Pb_sql.Persist.save_dir db dir;
      Printf.printf "database saved to %s\n" dir
  | None -> ());
  print_endline "pb_server stopped";
  flush stdout

let cmd =
  let term =
    Term.(
      const serve $ host_arg $ port_arg $ max_conns_arg $ max_inflight_arg
      $ max_queue_arg $ deadline_arg $ tables_arg $ size_arg $ seed_arg
      $ db_dir_arg $ slowlog_arg $ plan_cache_arg $ metrics_port_arg
      $ serve_mode_arg $ shard_arg $ trace_capacity_arg)
  in
  Cmd.v
    (Cmd.info "pb_server" ~version:"1.0.0"
       ~doc:"PackageBuilder wire-protocol server (PaQL/SQL over TCP)")
    term

let () = exit (Cmd.eval cmd)
